package impala

import "fmt"

// checker performs type checking and annotates every expression with its
// type. The language is monomorphic; top-level functions may be mutually
// recursive (signatures are collected before bodies are checked).
type checker struct {
	funcs   map[string]*Fn
	decls   map[string]*FuncDecl
	statics map[string]Type
	// scopes is a stack of lexical scopes.
	scopes []map[string]varInfo
	// fnRet is the current function/lambda return type.
	fnRet Type
	// loopDepth tracks break/continue legality.
	loopDepth int
}

type varInfo struct {
	ty  Type
	mut bool
}

// Check type-checks a whole-program unit, annotating the AST in place.
// Module units (a `module` header, imports or re-exports) must go through
// CheckModule instead: their imports are only resolvable at link time.
func Check(prog *Program) error {
	if prog.Module != "" {
		return errf(prog.ModulePos, "module %q requires module-aware compilation (compile all module sources together)", prog.Module)
	}
	if len(prog.Imports) > 0 {
		return errf(prog.Imports[0].Pos, "import requires a module declaration and module-aware compilation")
	}
	if len(prog.Reexports) > 0 {
		return errf(prog.Reexports[0].Pos, "export requires a module declaration")
	}
	return checkProgram(prog, true)
}

// CheckModule type-checks one module unit. Imported functions join the
// function namespace under their declared signatures (trusted here, verified
// against the exporter at link time); main is not required — the linked
// program needs one, an individual module does not.
func CheckModule(prog *Program) error {
	if prog.Module == "" {
		return errf(Pos{1, 1}, "missing module declaration (module NAME;)")
	}
	return checkProgram(prog, false)
}

func checkProgram(prog *Program, requireMain bool) error {
	c := &checker{
		funcs:   map[string]*Fn{},
		decls:   map[string]*FuncDecl{},
		statics: map[string]Type{},
	}
	for _, sd := range prog.Statics {
		if _, dup := c.statics[sd.Name]; dup {
			return errf(sd.Pos, "static %q redefined", sd.Name)
		}
		ty, err := c.staticInitType(sd.Init)
		if err != nil {
			return err
		}
		sd.Init.setTy(ty)
		c.statics[sd.Name] = ty
	}
	for _, im := range prog.Imports {
		if im.From == prog.Module {
			return errf(im.Pos, "module %q imports itself", prog.Module)
		}
		if _, dup := c.funcs[im.Name]; dup {
			return errf(im.Pos, "import %q redefined", im.Name)
		}
		sig, err := c.importSig(im)
		if err != nil {
			return err
		}
		c.funcs[im.Name] = sig
	}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return errf(f.Pos, "function %q redefined", f.Name)
		}
		sig, err := c.funcSig(f)
		if err != nil {
			return err
		}
		c.funcs[f.Name] = sig
		c.decls[f.Name] = f
	}
	// The export surface: exported functions plus re-exports, no duplicates.
	// A re-export must name something resolvable — an import (forwarding
	// another module's function) or a local function.
	exported := map[string]bool{}
	for _, f := range prog.Funcs {
		if f.Exported {
			exported[f.Name] = true
		}
	}
	for _, re := range prog.Reexports {
		if _, ok := c.funcs[re.Name]; !ok {
			return errf(re.Pos, "export %q does not name an import or function", re.Name)
		}
		if exported[re.Name] {
			return errf(re.Pos, "export %q duplicated", re.Name)
		}
		exported[re.Name] = true
	}
	if requireMain {
		if _, ok := c.funcs["main"]; !ok {
			return errf(Pos{1, 1}, "missing function main")
		}
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// importSig resolves an import declaration's parameter and return types
// into the signature the importer compiles against.
func (c *checker) importSig(im *ImportDecl) (*Fn, error) {
	sig := &Fn{Ret: TyUnit}
	for _, p := range im.Params {
		ty, err := c.resolveType(p)
		if err != nil {
			return nil, err
		}
		sig.Params = append(sig.Params, ty)
	}
	if im.Ret != nil {
		ty, err := c.resolveType(im.Ret)
		if err != nil {
			return nil, err
		}
		sig.Ret = ty
	}
	return sig, nil
}

// FuncType returns the checked signature of a declared function (valid
// after Check).
func FuncType(prog *Program, name string) *Fn {
	c := &checker{funcs: map[string]*Fn{}}
	for _, f := range prog.Funcs {
		if f.Name == name {
			sig, err := c.funcSig(f)
			if err == nil {
				return sig
			}
		}
	}
	return nil
}

func (c *checker) funcSig(f *FuncDecl) (*Fn, error) {
	sig := &Fn{Ret: TyUnit}
	for _, p := range f.Params {
		ty, err := c.resolveType(p.Type)
		if err != nil {
			return nil, err
		}
		sig.Params = append(sig.Params, ty)
	}
	if f.Ret != nil {
		ty, err := c.resolveType(f.Ret)
		if err != nil {
			return nil, err
		}
		sig.Ret = ty
	}
	return sig, nil
}

func (c *checker) resolveType(te TypeExpr) (Type, error) {
	switch te := te.(type) {
	case *NamedType:
		switch te.Name {
		case "i64":
			return TyI64, nil
		case "f64":
			return TyF64, nil
		case "bool":
			return TyBool, nil
		}
		return nil, errf(te.Pos, "unknown type %q", te.Name)
	case *ArrayTypeExpr:
		elem, err := c.resolveType(te.Elem)
		if err != nil {
			return nil, err
		}
		return &Array{Elem: elem}, nil
	case *TupleTypeExpr:
		if len(te.Elems) == 0 {
			return TyUnit, nil
		}
		if len(te.Elems) == 1 {
			return c.resolveType(te.Elems[0])
		}
		tt := &Tuple{}
		for _, e := range te.Elems {
			ty, err := c.resolveType(e)
			if err != nil {
				return nil, err
			}
			tt.Elems = append(tt.Elems, ty)
		}
		return tt, nil
	case *FnTypeExpr:
		ft := &Fn{Ret: TyUnit}
		for _, p := range te.Params {
			ty, err := c.resolveType(p)
			if err != nil {
				return nil, err
			}
			ft.Params = append(ft.Params, ty)
		}
		if te.Ret != nil {
			ty, err := c.resolveType(te.Ret)
			if err != nil {
				return nil, err
			}
			ft.Ret = ty
		}
		return ft, nil
	}
	return nil, fmt.Errorf("impala: bad type expression %T", te)
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]varInfo{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) define(pos Pos, name string, ty Type, mut bool) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(pos, "%q redefined in this scope", name)
	}
	top[name] = varInfo{ty: ty, mut: mut}
	return nil
}

func (c *checker) lookup(name string) (varInfo, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v, true
		}
	}
	if ty, ok := c.statics[name]; ok {
		return varInfo{ty: ty, mut: true}, true
	}
	if sig, ok := c.funcs[name]; ok {
		return varInfo{ty: sig}, true
	}
	return varInfo{}, false
}

// staticInitType validates a static initializer (a literal, possibly
// negated) and returns its type.
func (c *checker) staticInitType(x Expr) (Type, error) {
	switch x := x.(type) {
	case *IntLit:
		return TyI64, nil
	case *FloatLit:
		return TyF64, nil
	case *BoolLit:
		return TyBool, nil
	case *UnaryExpr:
		if x.Op == "-" {
			t, err := c.staticInitType(x.X)
			if err == nil && IsNumeric(t) {
				x.setTy(t)
				return t, nil
			}
		}
	}
	return nil, errf(x.Span(), "static initializer must be a literal")
}

func (c *checker) checkFunc(f *FuncDecl) error {
	sig := c.funcs[f.Name]
	c.fnRet = sig.Ret
	c.push()
	defer c.pop()
	for i, p := range f.Params {
		if err := c.define(p.Pos, p.Name, sig.Params[i], false); err != nil {
			return err
		}
	}
	bodyTy, err := c.checkExpr(f.Body)
	if err != nil {
		return err
	}
	if !Equal(bodyTy, sig.Ret) && !blockDiverges(f.Body) {
		return errf(f.Pos, "function %q returns %s but body has type %s", f.Name, sig.Ret, bodyTy)
	}
	return nil
}

// blockDiverges reports whether the block always returns/breaks before its
// end (so its tail type is irrelevant).
func blockDiverges(b *BlockExpr) bool {
	if b.Tail != nil {
		return false
	}
	for _, s := range b.Stmts {
		if _, ok := s.(*ReturnStmt); ok {
			return true
		}
	}
	return false
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *LetStmt:
		ty, err := c.checkExpr(s.Init)
		if err != nil {
			return err
		}
		if s.Type != nil {
			want, err := c.resolveType(s.Type)
			if err != nil {
				return err
			}
			if !Equal(ty, want) {
				return errf(s.Pos, "let %s: declared %s but initializer has type %s", s.Name, want, ty)
			}
			ty = want
		}
		return c.define(s.Pos, s.Name, ty, s.Mut)

	case *AssignStmt:
		vt, err := c.checkExpr(s.Value)
		if err != nil {
			return err
		}
		switch target := s.Target.(type) {
		case *Ident:
			info, ok := c.lookup(target.Name)
			if !ok {
				return errf(s.Pos, "assignment to undefined variable %q", target.Name)
			}
			if !info.mut {
				return errf(s.Pos, "cannot assign to immutable %q (declare it with let mut)", target.Name)
			}
			if !Equal(info.ty, vt) {
				return errf(s.Pos, "cannot assign %s to %q of type %s", vt, target.Name, info.ty)
			}
			target.setTy(info.ty)
			return nil
		case *IndexExpr:
			tt, err := c.checkExpr(target)
			if err != nil {
				return err
			}
			if !Equal(tt, vt) {
				return errf(s.Pos, "cannot store %s into array of %s", vt, tt)
			}
			return nil
		default:
			return errf(s.Pos, "left side of assignment must be a variable or array element")
		}

	case *ExprStmt:
		_, err := c.checkExpr(s.X)
		return err

	case *WhileStmt:
		ct, err := c.checkExpr(s.Cond)
		if err != nil {
			return err
		}
		if !IsBool(ct) {
			return errf(s.Pos, "while condition must be bool, got %s", ct)
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		_, err = c.checkExpr(s.Body)
		return err

	case *ForStmt:
		lt, err := c.checkExpr(s.Lo)
		if err != nil {
			return err
		}
		ht, err := c.checkExpr(s.Hi)
		if err != nil {
			return err
		}
		if !IsInt(lt) || !IsInt(ht) {
			return errf(s.Pos, "for bounds must be i64, got %s .. %s", lt, ht)
		}
		c.push()
		defer c.pop()
		if err := c.define(s.Pos, s.Name, TyI64, false); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		_, err = c.checkExpr(s.Body)
		return err

	case *ReturnStmt:
		ty := Type(TyUnit)
		if s.X != nil {
			var err error
			ty, err = c.checkExpr(s.X)
			if err != nil {
				return err
			}
		}
		if c.fnRet == nil {
			return errf(s.Pos, "return requires a declared return type (annotate the lambda with -> T)")
		}
		if !Equal(ty, c.fnRet) {
			return errf(s.Pos, "return of %s in function returning %s", ty, c.fnRet)
		}
		return nil

	case *BreakStmt:
		if c.loopDepth == 0 {
			return errf(s.Pos, "break outside loop")
		}
		return nil

	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(s.Pos, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("impala: bad statement %T", s)
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	ty, err := c.typeOf(e)
	if err != nil {
		return nil, err
	}
	e.setTy(ty)
	return ty, nil
}

func (c *checker) typeOf(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return TyI64, nil
	case *FloatLit:
		return TyF64, nil
	case *BoolLit:
		return TyBool, nil

	case *Ident:
		// Builtins are handled at the call site; bare references to them
		// are rejected below in CallExpr checking.
		if info, ok := c.lookup(e.Name); ok {
			return info.ty, nil
		}
		return nil, errf(e.Pos, "undefined name %q", e.Name)

	case *UnaryExpr:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			if !IsNumeric(xt) {
				return nil, errf(e.Pos, "unary - on %s", xt)
			}
			return xt, nil
		case "!":
			if !IsBool(xt) {
				return nil, errf(e.Pos, "unary ! on %s", xt)
			}
			return TyBool, nil
		}
		return nil, errf(e.Pos, "bad unary operator %q", e.Op)

	case *BinaryExpr:
		lt, err := c.checkExpr(e.L)
		if err != nil {
			return nil, err
		}
		rt, err := c.checkExpr(e.R)
		if err != nil {
			return nil, err
		}
		if !Equal(lt, rt) {
			return nil, errf(e.Pos, "operands of %q have different types: %s vs %s", e.Op, lt, rt)
		}
		switch e.Op {
		case "&&", "||":
			if !IsBool(lt) {
				return nil, errf(e.Pos, "%q requires bool operands, got %s", e.Op, lt)
			}
			return TyBool, nil
		case "==", "!=":
			if _, ok := lt.(*Prim); !ok {
				return nil, errf(e.Pos, "%q requires primitive operands, got %s", e.Op, lt)
			}
			return TyBool, nil
		case "<", "<=", ">", ">=":
			if !IsNumeric(lt) {
				return nil, errf(e.Pos, "%q requires numeric operands, got %s", e.Op, lt)
			}
			return TyBool, nil
		case "+", "-", "*", "/":
			if !IsNumeric(lt) {
				return nil, errf(e.Pos, "%q requires numeric operands, got %s", e.Op, lt)
			}
			return lt, nil
		case "%":
			if !IsNumeric(lt) {
				return nil, errf(e.Pos, "%q requires numeric operands, got %s", e.Op, lt)
			}
			return lt, nil
		case "&", "|", "^", "<<", ">>":
			if !IsInt(lt) {
				return nil, errf(e.Pos, "%q requires i64 operands, got %s", e.Op, lt)
			}
			return lt, nil
		}
		return nil, errf(e.Pos, "bad operator %q", e.Op)

	case *CallExpr:
		if id, ok := e.Callee.(*Ident); ok {
			if _, isVar := c.lookup(id.Name); !isVar {
				return c.checkBuiltin(e, id)
			}
		}
		ct, err := c.checkExpr(e.Callee)
		if err != nil {
			return nil, err
		}
		ft, ok := ct.(*Fn)
		if !ok {
			return nil, errf(e.Span(), "cannot call value of type %s", ct)
		}
		if len(e.Args) != len(ft.Params) {
			return nil, errf(e.Span(), "call expects %d arguments, got %d", len(ft.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at, err := c.checkExpr(a)
			if err != nil {
				return nil, err
			}
			if !Equal(at, ft.Params[i]) {
				return nil, errf(a.Span(), "argument %d has type %s, expected %s", i+1, at, ft.Params[i])
			}
		}
		return ft.Ret, nil

	case *IfExpr:
		ct, err := c.checkExpr(e.Cond)
		if err != nil {
			return nil, err
		}
		if !IsBool(ct) {
			return nil, errf(e.Span(), "if condition must be bool, got %s", ct)
		}
		tt, err := c.checkExpr(e.Then)
		if err != nil {
			return nil, err
		}
		if e.Else == nil {
			if !Equal(tt, TyUnit) {
				return nil, errf(e.Span(), "if without else must have unit type, got %s", tt)
			}
			return TyUnit, nil
		}
		et, err := c.checkExpr(e.Else)
		if err != nil {
			return nil, err
		}
		if !Equal(tt, et) {
			return nil, errf(e.Span(), "if branches have different types: %s vs %s", tt, et)
		}
		return tt, nil

	case *BlockExpr:
		c.push()
		defer c.pop()
		for _, s := range e.Stmts {
			if err := c.checkStmt(s); err != nil {
				return nil, err
			}
		}
		if e.Tail == nil {
			return TyUnit, nil
		}
		return c.checkExpr(e.Tail)

	case *LambdaExpr:
		ft := &Fn{Ret: TyUnit}
		c.push()
		defer c.pop()
		for _, p := range e.Params {
			pt, err := c.resolveType(p.Type)
			if err != nil {
				return nil, err
			}
			ft.Params = append(ft.Params, pt)
			if err := c.define(p.Pos, p.Name, pt, false); err != nil {
				return nil, err
			}
		}
		savedRet := c.fnRet
		savedLoop := c.loopDepth
		c.loopDepth = 0
		if e.Ret != nil {
			rt, err := c.resolveType(e.Ret)
			if err != nil {
				return nil, err
			}
			ft.Ret = rt
			c.fnRet = rt
			bt, err := c.checkExpr(e.Body)
			if err != nil {
				return nil, err
			}
			if !Equal(bt, rt) && !lambdaDiverges(e) {
				return nil, errf(e.Span(), "lambda declared -> %s but body has type %s", rt, bt)
			}
		} else {
			// Infer: check the body with an unknown return type; explicit
			// return statements are not allowed in inferred lambdas.
			c.fnRet = nil
			bt, err := c.checkExpr(e.Body)
			if err != nil {
				return nil, err
			}
			ft.Ret = bt
		}
		c.fnRet = savedRet
		c.loopDepth = savedLoop
		return ft, nil

	case *ArrayLit:
		it, err := c.checkExpr(e.Init)
		if err != nil {
			return nil, err
		}
		nt, err := c.checkExpr(e.Len)
		if err != nil {
			return nil, err
		}
		if !IsInt(nt) {
			return nil, errf(e.Span(), "array length must be i64, got %s", nt)
		}
		return &Array{Elem: it}, nil

	case *IndexExpr:
		at, err := c.checkExpr(e.Arr)
		if err != nil {
			return nil, err
		}
		arr, ok := at.(*Array)
		if !ok {
			return nil, errf(e.Span(), "cannot index value of type %s", at)
		}
		it, err := c.checkExpr(e.Idx)
		if err != nil {
			return nil, err
		}
		if !IsInt(it) {
			return nil, errf(e.Span(), "array index must be i64, got %s", it)
		}
		return arr.Elem, nil

	case *TupleLit:
		if len(e.Elems) == 0 {
			return TyUnit, nil
		}
		tt := &Tuple{}
		for _, el := range e.Elems {
			et, err := c.checkExpr(el)
			if err != nil {
				return nil, err
			}
			tt.Elems = append(tt.Elems, et)
		}
		return tt, nil

	case *FieldExpr:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		tt, ok := xt.(*Tuple)
		if !ok {
			return nil, errf(e.Span(), "field access on non-tuple %s", xt)
		}
		if e.Index < 0 || e.Index >= len(tt.Elems) {
			return nil, errf(e.Span(), "tuple index %d out of range for %s", e.Index, tt)
		}
		return tt.Elems[e.Index], nil

	case *CastExpr:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		dt, err := c.resolveType(e.Type)
		if err != nil {
			return nil, err
		}
		if !IsNumeric(xt) && !IsBool(xt) {
			return nil, errf(e.Span(), "cannot cast %s", xt)
		}
		if !IsNumeric(dt) {
			return nil, errf(e.Span(), "cannot cast to %s", dt)
		}
		return dt, nil
	}
	return nil, fmt.Errorf("impala: bad expression %T", e)
}

func lambdaDiverges(e *LambdaExpr) bool {
	b, ok := e.Body.(*BlockExpr)
	return ok && blockDiverges(b)
}

// checkBuiltin types the built-in pseudo-functions print, print_char and
// len.
func (c *checker) checkBuiltin(e *CallExpr, id *Ident) (Type, error) {
	argTypes := make([]Type, len(e.Args))
	for i, a := range e.Args {
		t, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		argTypes[i] = t
	}
	switch id.Name {
	case "print":
		if len(e.Args) != 1 || !IsNumeric(argTypes[0]) {
			return nil, errf(e.Span(), "print takes one numeric argument")
		}
		id.setTy(&Fn{Params: argTypes, Ret: TyUnit})
		return TyUnit, nil
	case "print_char":
		if len(e.Args) != 1 || !IsInt(argTypes[0]) {
			return nil, errf(e.Span(), "print_char takes one i64 argument")
		}
		id.setTy(&Fn{Params: argTypes, Ret: TyUnit})
		return TyUnit, nil
	case "len":
		if len(e.Args) != 1 {
			return nil, errf(e.Span(), "len takes one array argument")
		}
		if _, ok := argTypes[0].(*Array); !ok {
			return nil, errf(e.Span(), "len takes an array, got %s", argTypes[0])
		}
		id.setTy(&Fn{Params: argTypes, Ret: TyI64})
		return TyI64, nil
	}
	return nil, errf(e.Span(), "undefined function %q", id.Name)
}
