package impala

import (
	"fmt"

	"thorin/internal/ir"
)

// ImportSig records one import edge of a module: the name it binds (which
// is also the exporting module's export name — imports do not rename), the
// exporting module, and the signature the importer compiled against. The
// linker checks Sig against the exporter's actual type.
type ImportSig struct {
	Name string `json:"name"`
	From string `json:"from"`
	Sig  string `json:"sig"`
}

// ModExport describes one entry of a module's export surface. A locally
// defined export has Forward == "" and is backed by an extern continuation
// of the same name in the module's world. A re-exported import has Forward
// set to the module it was imported from; resolving it means following the
// chain into that module's surface under the same name.
type ModExport struct {
	Sig     string `json:"sig"`
	Forward string `json:"forward,omitempty"`
}

// ModuleInfo is a module's link surface: what it exports, what it imports,
// and from whom. It travels alongside the module's world (and inside the
// per-module artifact) so the linker can resolve and type-check edges
// without re-parsing sources.
type ModuleInfo struct {
	Name    string               `json:"name"`
	Exports map[string]ModExport `json:"exports,omitempty"`
	Imports []ImportSig          `json:"imports,omitempty"`
	// Externs lists functions declared `extern fn` (main included): they
	// stay externally visible in the linked program, unlike `export fn`
	// markers, which the linker strips after resolution.
	Externs []string `json:"externs,omitempty"`
}

// CompileModule parses, checks and lowers one module unit into its own
// world. Imports become bodyless extern continuation stubs named after the
// imported function; the linker replaces them with the exporter's
// definitions (see internal/link).
func CompileModule(src string) (*ir.World, *ModuleInfo, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if err := CheckModule(prog); err != nil {
		return nil, nil, err
	}
	return EmitModule(prog)
}

// ModuleSurface computes a checked module unit's link surface without
// lowering it. Build systems and the compile server use it to resolve
// import edges (and derive cache keys) before deciding what to recompile.
func ModuleSurface(prog *Program) (*ModuleInfo, error) {
	info := &ModuleInfo{Name: prog.Module, Exports: map[string]ModExport{}}
	c := &checker{funcs: map[string]*Fn{}}
	imported := map[string]*ImportDecl{}
	sigs := map[string]*Fn{}
	for _, im := range prog.Imports {
		sig, err := c.importSig(im)
		if err != nil {
			return nil, err
		}
		sigs[im.Name] = sig
		imported[im.Name] = im
		info.Imports = append(info.Imports, ImportSig{Name: im.Name, From: im.From, Sig: sig.String()})
	}
	for _, f := range prog.Funcs {
		sig, err := c.funcSig(f)
		if err != nil {
			return nil, err
		}
		sigs[f.Name] = sig
		if f.Exported {
			info.Exports[f.Name] = ModExport{Sig: sig.String()}
		}
		if f.Extern {
			info.Externs = append(info.Externs, f.Name)
		}
	}
	for _, re := range prog.Reexports {
		sig := sigs[re.Name] // resolvability checked by CheckModule
		if im, ok := imported[re.Name]; ok {
			info.Exports[re.Name] = ModExport{Sig: sig.String(), Forward: im.From}
			continue
		}
		info.Exports[re.Name] = ModExport{Sig: sig.String()}
	}
	return info, nil
}

// EmitModule lowers a checked module unit. Like EmitProgram, but:
//
//   - each import materializes as a bodyless extern continuation (the
//     "stub") with the CPS type of its declared signature, callable from
//     module code exactly like a local function;
//   - exported functions are marked extern so per-module optimization
//     treats them as roots (the linker de-externs everything but main
//     after stitching);
//   - the returned ModuleInfo captures the export/import surface with
//     printable signature strings for link-time type checking.
func EmitModule(prog *Program) (*ir.World, *ModuleInfo, error) {
	info, err := ModuleSurface(prog)
	if err != nil {
		return nil, nil, err
	}
	em := &emitter{
		w:       ir.NewWorld(),
		fnCont:  map[string]*ir.Continuation{},
		fnSig:   map[string]*Fn{},
		statics: map[string]ir.Def{},
	}

	for _, sd := range prog.Statics {
		init, err := em.staticInit(sd.Init)
		if err != nil {
			return nil, nil, err
		}
		g := em.w.Global(init)
		g.SetName(sd.Name)
		em.statics[sd.Name] = g
	}

	c := &checker{funcs: map[string]*Fn{}}
	for _, im := range prog.Imports {
		sig, err := c.importSig(im)
		if err != nil {
			return nil, nil, err
		}
		em.fnSig[im.Name] = sig
		stub := em.w.Continuation(em.cpsFnType(sig), im.Name)
		stub.SetExtern(true)
		em.fnCont[im.Name] = stub
	}
	for _, f := range prog.Funcs {
		sig, err := c.funcSig(f)
		if err != nil {
			return nil, nil, err
		}
		em.fnSig[f.Name] = sig
		cont := em.w.Continuation(em.cpsFnType(sig), f.Name)
		_, exportedHere := info.Exports[f.Name]
		cont.SetExtern(f.Extern || f.Exported || exportedHere)
		cont.AlwaysInline = f.ForceInline
		em.fnCont[f.Name] = cont
	}

	for _, f := range prog.Funcs {
		if err := em.emitFunc(f); err != nil {
			return nil, nil, err
		}
	}
	if err := ir.Verify(em.w); err != nil {
		return nil, nil, fmt.Errorf("impala: internal error: emitted invalid IR: %w", err)
	}
	return em.w, info, nil
}
