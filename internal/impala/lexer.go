package impala

import (
	"strings"
	"unicode"
)

// lexer turns source text into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// twoCharOps are the multi-character operators, longest-match first.
var twoCharOps = []string{
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "..",
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off+1 <= len(l.src) {
				if l.off+1 < len(l.src) && l.peekByte() == '*' && l.src[l.off+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				if l.off >= len(l.src) {
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peekByte()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.off]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil

	case c >= '0' && c <= '9':
		start := l.off
		isFloat := false
		for l.off < len(l.src) {
			c := l.peekByte()
			if c >= '0' && c <= '9' || c == '_' {
				l.advance()
				continue
			}
			// A '.' starts a fraction only if not "..".
			if c == '.' && !isFloat && l.off+1 < len(l.src) && l.src[l.off+1] != '.' {
				isFloat = true
				l.advance()
				continue
			}
			if (c == 'e' || c == 'E') && isFloat {
				l.advance()
				if l.peekByte() == '+' || l.peekByte() == '-' {
					l.advance()
				}
				continue
			}
			break
		}
		text := strings.ReplaceAll(l.src[start:l.off], "_", "")
		kind := TokInt
		if isFloat {
			kind = TokFloat
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil

	case c == '\'':
		// Character literal -> integer token with its code point.
		l.advance()
		if l.off >= len(l.src) {
			return Token{}, errf(pos, "unterminated character literal")
		}
		ch := l.advance()
		if ch == '\\' {
			esc := l.advance()
			switch esc {
			case 'n':
				ch = '\n'
			case 't':
				ch = '\t'
			case '\\':
				ch = '\\'
			case '\'':
				ch = '\''
			default:
				return Token{}, errf(pos, "bad escape '\\%c'", esc)
			}
		}
		if l.off >= len(l.src) || l.advance() != '\'' {
			return Token{}, errf(pos, "unterminated character literal")
		}
		return Token{Kind: TokInt, Text: itoa(int64(ch)), Pos: pos}, nil
	}

	// Operators / punctuation.
	if l.off+1 < len(l.src) {
		two := l.src[l.off : l.off+2]
		for _, op := range twoCharOps {
			if two == op {
				l.advance()
				l.advance()
				return Token{Kind: TokPunct, Text: op, Pos: pos}, nil
			}
		}
	}
	if strings.ContainsRune("+-*/%<>=!&|^(){}[],;:.@", rune(c)) {
		l.advance()
		return Token{Kind: TokPunct, Text: string(c), Pos: pos}, nil
	}
	if unicode.IsPrint(rune(c)) {
		return Token{}, errf(pos, "unexpected character %q", string(c))
	}
	return Token{}, errf(pos, "unexpected byte 0x%02x", c)
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// Lex tokenizes the whole input (used by tests and the parser).
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
