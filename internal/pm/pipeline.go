package pm

import (
	"errors"
	"time"

	"thorin/internal/ir"
)

// DefaultMaxFixIters bounds every fix(...) group. A group that has not
// reached a fixpoint after this many iterations stops and is flagged
// Saturated in the report instead of looping forever.
const DefaultMaxFixIters = 32

// Pipeline is a parsed pass sequence ready to run.
type Pipeline struct {
	// Spec is the string the pipeline was parsed from.
	Spec string
	// MaxFixIters bounds each fix group (DefaultMaxFixIters when parsed).
	MaxFixIters int

	items []item
}

// fingerprint is the cheap world-change signal: any node allocation moves
// gen, any continuation or primop removal moves the counts.
type fingerprint struct {
	gen     int
	conts   int
	primops int
}

func snapshot(w *ir.World) fingerprint {
	return fingerprint{gen: w.Generation(), conts: w.NumContinuations(), primops: w.NumPrimOps()}
}

// Run executes the pipeline over ctx.World. It always returns the report
// accumulated so far, even when a pass or a verification fails.
func (p *Pipeline) Run(ctx *Context) (*Report, error) {
	rep := &Report{Spec: p.Spec}
	// Drain journal activity that predates this run (IR construction,
	// external mutations on a reused context): it dirties every pass record,
	// so nothing is skipped based on stale knowledge.
	ctx.noteDirty("")
	start := time.Now()
	_, err := p.runSeq(ctx, p.items, rep, "", 0)
	rep.Total = time.Since(start)
	rep.Cache = ctx.Cache.Stats()
	return rep, err
}

// runSeq runs one pass sequence, returning whether any pass changed the IR.
// path labels the enclosing fix nesting ("fix", "fix/fix", ...) and iter is
// the current iteration of the innermost enclosing group (0 = top level).
func (p *Pipeline) runSeq(ctx *Context, items []item, rep *Report, path string, iter int) (bool, error) {
	changed := false
	for _, it := range items {
		switch it := it.(type) {
		case passItem:
			ch, err := p.runPass(ctx, it.pass, rep, path, iter)
			changed = changed || ch
			if err != nil {
				return changed, err
			}
		case fixItem:
			ch, err := p.runFix(ctx, it, rep, path)
			changed = changed || ch
			if err != nil {
				return changed, err
			}
		}
	}
	return changed, nil
}

// runFix iterates a pass group until an iteration reports no change.
func (p *Pipeline) runFix(ctx *Context, f fixItem, rep *Report, path string) (bool, error) {
	sub := "fix"
	if path != "" {
		sub = path + "/fix"
	}
	max := p.MaxFixIters
	if ctx.Budget.MaxFixpointIters > 0 {
		max = ctx.Budget.MaxFixpointIters
	}
	if max <= 0 {
		max = DefaultMaxFixIters
	}
	changed := false
	for i := 1; ; i++ {
		ch, err := p.runSeq(ctx, f.items, rep, sub, i)
		changed = changed || ch
		if err != nil {
			return changed, err
		}
		if !ch {
			return changed, nil
		}
		if i == max {
			rep.Saturated = true
			return changed, nil
		}
	}
}

func (p *Pipeline) runPass(ctx *Context, pass Pass, rep *Report, path string, iter int) (bool, error) {
	if berr := ctx.Budget.check(ctx, "before pass "+pass.Name()); berr != nil {
		return false, berr
	}
	if ctx.Incremental {
		if _, ok := pass.(SelfFixpointing); ok && ctx.passClean(pass.Name()) {
			// The pass saturated on exactly this IR already and nothing was
			// journaled since: running it again is provably a no-op. Record
			// the skip (Rewrites 0, Changed false) and move on — no
			// verification, no invalidation.
			rep.Runs = append(rep.Runs, PassRun{Name: pass.Name(), Path: path, Iter: iter, Skipped: true})
			return false, nil
		}
	}
	before := snapshot(ctx.World)
	cacheBefore := ctx.Cache.Stats()
	start := time.Now()
	var res Result
	var err error
	var parallelism int
	var memoHits int
	var workers []WorkerStat
	if sr, ok := pass.(ScopeRewriter); ok {
		res, parallelism, workers, memoHits, err = runScoped(ctx, sr)
	} else {
		// Panic containment boundary for ordinary passes: a panicking pass
		// fails its pipeline with a structured *PassPanicError instead of
		// crashing the process. ScopeRewriter phases are guarded per target
		// inside runScoped.
		err = guard(pass.Name(), "", func() error {
			var rerr error
			res, rerr = pass.Run(ctx)
			return rerr
		})
	}
	dur := time.Since(start)
	after := snapshot(ctx.World)
	cacheAfter := ctx.Cache.Stats()

	changed := res.Changed || res.Rewrites > 0 || after != before
	if changed && !ctx.Incremental {
		// Conservative invalidation rule for the non-incremental reference
		// mode: any reported or fingerprinted mutation voids every memoized
		// analysis. Incremental mode instead relies on the cache's per-lookup
		// stamp validation, which evicts exactly the entries that went stale.
		ctx.Cache.InvalidateAll()
	}
	// Update the skip records: journal activity dirties every other pass;
	// this pass just saturated on the result of its own rewrites, so it
	// stays clean unless it hit its round cap. A failed run dirties itself
	// too — its partial mutations are not a fixpoint of anything.
	if err == nil {
		ctx.noteDirty(pass.Name())
		ctx.markRun(pass.Name(), res.Saturated)
	} else {
		ctx.noteDirty("")
	}

	run := PassRun{
		Name:          pass.Name(),
		Path:          path,
		Iter:          iter,
		Time:          dur,
		Rewrites:      res.Rewrites,
		Changed:       changed,
		ContsBefore:   before.conts,
		ContsAfter:    after.conts,
		PrimOpsBefore: before.primops,
		PrimOpsAfter:  after.primops,
		CacheHits:     cacheAfter.Hits - cacheBefore.Hits,
		CacheMisses:   cacheAfter.Misses - cacheBefore.Misses,
		Parallelism:   parallelism,
		MemoHits:      memoHits,
		Workers:       workers,
	}
	if err != nil {
		run.Err = err.Error()
		rep.Runs = append(rep.Runs, run)
		var pp *PassPanicError
		if errors.As(err, &pp) {
			// Panics are already attributed to the pass; keep them typed so
			// the driver's failure policy and crash artifacts see the stack.
			return changed, err
		}
		return changed, &PassError{Pass: pass.Name(), Err: err}
	}
	if ctx.VerifyEach {
		if verr := ir.Verify(ctx.World); verr != nil {
			run.Err = verr.Error()
			rep.Runs = append(rep.Runs, run)
			return changed, &PassError{Pass: pass.Name(), Verify: true, Err: verr}
		}
	}
	rep.Runs = append(rep.Runs, run)
	if berr := ctx.Budget.check(ctx, "after pass "+pass.Name()); berr != nil {
		return changed, berr
	}
	return changed, nil
}
