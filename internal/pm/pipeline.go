package pm

import (
	"errors"
	"time"

	"thorin/internal/ir"
)

// DefaultMaxFixIters bounds every fix(...) group. A group that has not
// reached a fixpoint after this many iterations stops and is flagged
// Saturated in the report instead of looping forever.
const DefaultMaxFixIters = 32

// Pipeline is a parsed pass sequence ready to run.
type Pipeline struct {
	// Spec is the string the pipeline was parsed from.
	Spec string
	// MaxFixIters bounds each fix group (DefaultMaxFixIters when parsed).
	MaxFixIters int

	items []item
}

// fingerprint is the cheap world-change signal: any node allocation moves
// gen, any continuation or primop removal moves the counts.
type fingerprint struct {
	gen     int
	conts   int
	primops int
}

func snapshot(w *ir.World) fingerprint {
	return fingerprint{gen: w.Generation(), conts: w.NumContinuations(), primops: w.NumPrimOps()}
}

// Run executes the pipeline over ctx.World. It always returns the report
// accumulated so far, even when a pass or a verification fails.
func (p *Pipeline) Run(ctx *Context) (*Report, error) {
	rep := &Report{Spec: p.Spec}
	start := time.Now()
	_, err := p.runSeq(ctx, p.items, rep, "", 0)
	rep.Total = time.Since(start)
	rep.Cache = ctx.Cache.Stats()
	return rep, err
}

// runSeq runs one pass sequence, returning whether any pass changed the IR.
// path labels the enclosing fix nesting ("fix", "fix/fix", ...) and iter is
// the current iteration of the innermost enclosing group (0 = top level).
func (p *Pipeline) runSeq(ctx *Context, items []item, rep *Report, path string, iter int) (bool, error) {
	changed := false
	for _, it := range items {
		switch it := it.(type) {
		case passItem:
			ch, err := p.runPass(ctx, it.pass, rep, path, iter)
			changed = changed || ch
			if err != nil {
				return changed, err
			}
		case fixItem:
			ch, err := p.runFix(ctx, it, rep, path)
			changed = changed || ch
			if err != nil {
				return changed, err
			}
		}
	}
	return changed, nil
}

// runFix iterates a pass group until an iteration reports no change.
func (p *Pipeline) runFix(ctx *Context, f fixItem, rep *Report, path string) (bool, error) {
	sub := "fix"
	if path != "" {
		sub = path + "/fix"
	}
	max := p.MaxFixIters
	if ctx.Budget.MaxFixpointIters > 0 {
		max = ctx.Budget.MaxFixpointIters
	}
	if max <= 0 {
		max = DefaultMaxFixIters
	}
	changed := false
	for i := 1; ; i++ {
		ch, err := p.runSeq(ctx, f.items, rep, sub, i)
		changed = changed || ch
		if err != nil {
			return changed, err
		}
		if !ch {
			return changed, nil
		}
		if i == max {
			rep.Saturated = true
			return changed, nil
		}
	}
}

func (p *Pipeline) runPass(ctx *Context, pass Pass, rep *Report, path string, iter int) (bool, error) {
	if berr := ctx.Budget.check(ctx, "before pass "+pass.Name()); berr != nil {
		return false, berr
	}
	before := snapshot(ctx.World)
	cacheBefore := ctx.Cache.Stats()
	start := time.Now()
	var res Result
	var err error
	var parallelism int
	var workers []WorkerStat
	if sr, ok := pass.(ScopeRewriter); ok {
		res, parallelism, workers, err = runScoped(ctx, sr)
	} else {
		// Panic containment boundary for ordinary passes: a panicking pass
		// fails its pipeline with a structured *PassPanicError instead of
		// crashing the process. ScopeRewriter phases are guarded per target
		// inside runScoped.
		err = guard(pass.Name(), "", func() error {
			var rerr error
			res, rerr = pass.Run(ctx)
			return rerr
		})
	}
	dur := time.Since(start)
	after := snapshot(ctx.World)
	cacheAfter := ctx.Cache.Stats()

	changed := res.Changed || res.Rewrites > 0 || after != before
	if changed {
		// Conservative invalidation rule: any reported or fingerprinted
		// mutation voids every memoized analysis.
		ctx.Cache.InvalidateAll()
	}

	run := PassRun{
		Name:          pass.Name(),
		Path:          path,
		Iter:          iter,
		Time:          dur,
		Rewrites:      res.Rewrites,
		Changed:       changed,
		ContsBefore:   before.conts,
		ContsAfter:    after.conts,
		PrimOpsBefore: before.primops,
		PrimOpsAfter:  after.primops,
		CacheHits:     cacheAfter.Hits - cacheBefore.Hits,
		CacheMisses:   cacheAfter.Misses - cacheBefore.Misses,
		Parallelism:   parallelism,
		Workers:       workers,
	}
	if err != nil {
		run.Err = err.Error()
		rep.Runs = append(rep.Runs, run)
		var pp *PassPanicError
		if errors.As(err, &pp) {
			// Panics are already attributed to the pass; keep them typed so
			// the driver's failure policy and crash artifacts see the stack.
			return changed, err
		}
		return changed, &PassError{Pass: pass.Name(), Err: err}
	}
	if ctx.VerifyEach {
		if verr := ir.Verify(ctx.World); verr != nil {
			run.Err = verr.Error()
			rep.Runs = append(rep.Runs, run)
			return changed, &PassError{Pass: pass.Name(), Verify: true, Err: verr}
		}
	}
	rep.Runs = append(rep.Runs, run)
	if berr := ctx.Budget.check(ctx, "after pass "+pass.Name()); berr != nil {
		return changed, berr
	}
	return changed, nil
}
