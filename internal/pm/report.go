package pm

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"thorin/internal/analysis"
)

// PassRun is the instrumentation record of one pass execution.
type PassRun struct {
	Name string `json:"pass"`
	// Path is the fix-group nesting the run happened under ("" at top
	// level, "fix" inside a group, "fix/fix" nested).
	Path string `json:"path,omitempty"`
	// Iter is the 1-based iteration of the innermost enclosing fix group,
	// 0 for top-level runs.
	Iter          int           `json:"iter,omitempty"`
	Time          time.Duration `json:"time_ns"`
	Rewrites      int           `json:"rewrites"`
	Changed       bool          `json:"changed"`
	ContsBefore   int           `json:"conts_before"`
	ContsAfter    int           `json:"conts_after"`
	PrimOpsBefore int           `json:"primops_before"`
	PrimOpsAfter  int           `json:"primops_after"`
	CacheHits     int           `json:"cache_hits,omitempty"`
	CacheMisses   int           `json:"cache_misses,omitempty"`
	// Parallelism is the number of workers the analysis phase of a
	// ScopeRewriter pass ran with (0 for ordinary passes), and Workers holds
	// one record per worker. The IR a pass produces is independent of this
	// number; only the timing varies.
	Parallelism int          `json:"parallelism,omitempty"`
	Workers     []WorkerStat `json:"workers,omitempty"`
	// Skipped marks a run the incremental runner elided: the pass is
	// self-fixpointing and nothing it reads changed since it last ran, so
	// executing it would provably have been a no-op (Rewrites 0, Changed
	// false, zero time).
	Skipped bool `json:"skipped,omitempty"`
	// MemoHits counts the targets of a ScopeRewriter pass whose analysis
	// plan was served from the per-target memo instead of recomputed.
	MemoHits int    `json:"memo_hits,omitempty"`
	Err      string `json:"error,omitempty"`
}

// Label renders the run's position in the pipeline, e.g. "cleanup" or
// "fix#2:mem2reg".
func (r PassRun) Label() string {
	if r.Path == "" {
		return r.Name
	}
	return fmt.Sprintf("%s#%d:%s", r.Path, r.Iter, r.Name)
}

// Report is the instrumentation of one full pipeline run.
type Report struct {
	Spec  string        `json:"spec"`
	Runs  []PassRun     `json:"runs"`
	Total time.Duration `json:"total_ns"`
	// Saturated is set when a fix group hit its iteration bound without
	// reaching a fixpoint.
	Saturated bool                `json:"saturated,omitempty"`
	Cache     analysis.CacheStats `json:"cache"`
}

// IterRuns returns the runs of the given fix iteration (Iter == iter) at
// any nesting depth.
func (r *Report) IterRuns(iter int) []PassRun {
	var out []PassRun
	for _, run := range r.Runs {
		if run.Path != "" && run.Iter == iter {
			out = append(out, run)
		}
	}
	return out
}

// IterChanged reports whether any run of the given fix iteration changed
// the IR. A false result for iteration 2 certifies that iteration 1 already
// reached the fixpoint.
func (r *Report) IterChanged(iter int) bool {
	for _, run := range r.IterRuns(iter) {
		if run.Changed {
			return true
		}
	}
	return false
}

// Rewrites sums the rewrites of all runs.
func (r *Report) Rewrites() int {
	n := 0
	for _, run := range r.Runs {
		n += run.Rewrites
	}
	return n
}

// Skips counts the runs the incremental runner elided, and MemoHits sums the
// analysis plans served from the per-target memo. Both are zero in
// non-incremental mode — they are the report-level measure of what
// incrementality saved.
func (r *Report) Skips() int {
	n := 0
	for _, run := range r.Runs {
		if run.Skipped {
			n++
		}
	}
	return n
}

// MemoHits sums the memoized analysis plans across all runs (see Skips).
func (r *Report) MemoHits() int {
	n := 0
	for _, run := range r.Runs {
		n += run.MemoHits
	}
	return n
}

// WriteText renders the report as an aligned table.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "pass report: %s\n", r.Spec)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "pass\ttime\trewrites\tconts\tprimops\tcache")
	for _, run := range r.Runs {
		status := ""
		if run.Skipped {
			status = "  (skipped)"
		}
		if run.Err != "" {
			status = "  ERROR: " + run.Err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d→%d\t%d→%d\t%dh/%dm%s\n",
			run.Label(), fmtDur(run.Time), run.Rewrites,
			run.ContsBefore, run.ContsAfter,
			run.PrimOpsBefore, run.PrimOpsAfter,
			run.CacheHits, run.CacheMisses, status)
	}
	fmt.Fprintf(tw, "total\t%s\t%d\t\t\t%dh/%dm\n",
		fmtDur(r.Total), r.Rewrites(), r.Cache.Hits, r.Cache.Misses)
	tw.Flush()
	if r.Saturated {
		fmt.Fprintln(w, "warning: a fix group hit its iteration bound before reaching a fixpoint")
	}
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// fmtDur trims a duration to µs resolution so tables stay readable.
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// PassTotals aggregates the report per pass name (summing fix iterations),
// preserving first-appearance order. Used by the benchmark tables.
func (r *Report) PassTotals() []PassTotal {
	index := map[string]int{}
	var out []PassTotal
	for _, run := range r.Runs {
		i, ok := index[run.Name]
		if !ok {
			i = len(out)
			index[run.Name] = i
			out = append(out, PassTotal{Name: run.Name})
		}
		out[i].Time += run.Time
		out[i].Rewrites += run.Rewrites
		out[i].Runs++
	}
	return out
}

// PassTotal is the per-pass aggregate of one report.
type PassTotal struct {
	Name     string        `json:"pass"`
	Runs     int           `json:"runs"`
	Time     time.Duration `json:"time_ns"`
	Rewrites int           `json:"rewrites"`
}
