package pm

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Budget bounds the resources one pipeline run may consume. The zero value
// imposes no limits beyond the pipeline's default fixpoint bound. Budgets
// make the optimizer total: a diverging rewrite combination stops with
// Saturated, a code-size explosion from partial evaluation/inlining stops
// with ErrNodeBudget, and a wall-clock overrun stops with ErrDeadline —
// in every case with valid IR and a structured error instead of a hung or
// OOM-killed compile.
type Budget struct {
	// MaxFixpointIters overrides the pipeline's fix(...) iteration bound
	// (0 keeps the pipeline default). A group that hits the bound stops and
	// flags Saturated in the report instead of diverging.
	MaxFixpointIters int
	// MaxNodes bounds the world's node allocation count (its Generation).
	// Checked between passes; 0 means unlimited.
	MaxNodes int
	// Deadline is the wall-clock instant after which no further pass may
	// start. The zero time means no deadline.
	Deadline time.Time
}

// ErrNodeBudget is returned (wrapped) when the world outgrows Budget.MaxNodes.
var ErrNodeBudget = errors.New("pm: node budget exceeded")

// ErrDeadline is returned (wrapped) when Budget.Deadline passes mid-pipeline,
// or when the run's Context.Ctx reaches its deadline.
var ErrDeadline = errors.New("pm: compilation deadline exceeded")

// ErrCanceled is returned (wrapped) when the run's Context.Ctx is canceled
// mid-pipeline — e.g. a compile-server client disconnected and the request
// context was torn down. The pipeline stops cooperatively at the next check
// seam (between passes, between fixpoint iterations, between parallel
// analysis targets) so an abandoned compile frees its workers instead of
// running to completion into the void.
var ErrCanceled = errors.New("pm: compilation canceled")

// check validates the world against the budget between passes. label names
// the pipeline position being charged ("start", or the pass that just ran).
// It is also the cancellation seam: a canceled or expired Context.Ctx stops
// the pipeline here with ErrCanceled/ErrDeadline.
func (b Budget) check(ctx *Context, label string) error {
	if err := ctx.interrupted(label); err != nil {
		return err
	}
	if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
		return fmt.Errorf("%w at %s", ErrDeadline, label)
	}
	if b.MaxNodes > 0 && ctx.World.Generation() > b.MaxNodes {
		return fmt.Errorf("%w at %s: %d nodes over limit %d",
			ErrNodeBudget, label, ctx.World.Generation(), b.MaxNodes)
	}
	return nil
}

// interrupted maps the run context's state to the budget error vocabulary:
// a context that timed out reads as a deadline overrun, an explicit cancel
// (client disconnect, server drain) as ErrCanceled. A nil Ctx never
// interrupts.
func (c *Context) interrupted(label string) error {
	if c.Ctx == nil {
		return nil
	}
	switch err := c.Ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w at %s", ErrDeadline, label)
	default:
		return fmt.Errorf("%w at %s", ErrCanceled, label)
	}
}

// ParseBudget parses the -budget flag syntax: comma-separated key=value
// pairs among iters=N (fixpoint iterations), nodes=N (IR node allocations)
// and time=DURATION (wall clock, Go duration syntax). The empty string is
// the zero Budget.
func ParseBudget(s string) (Budget, error) {
	var b Budget
	if strings.TrimSpace(s) == "" {
		return b, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Budget{}, fmt.Errorf("pm: bad budget element %q (want key=value)", part)
		}
		switch key {
		case "iters":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return Budget{}, fmt.Errorf("pm: bad budget iters %q", val)
			}
			b.MaxFixpointIters = n
		case "nodes":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return Budget{}, fmt.Errorf("pm: bad budget nodes %q", val)
			}
			b.MaxNodes = n
		case "time":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return Budget{}, fmt.Errorf("pm: bad budget time %q", val)
			}
			b.Deadline = time.Now().Add(d)
		default:
			return Budget{}, fmt.Errorf("pm: unknown budget key %q (want iters, nodes or time)", key)
		}
	}
	return b, nil
}
