package pm

// Incremental re-running: the world's change journal (internal/ir/journal.go)
// tells the runner which continuations were touched since the last drain.
// The runner uses that signal at two granularities:
//
//   - Whole-pass skips: a pass that (a) opted in via the SelfFixpointing
//     marker, (b) ran to completion without hitting its internal round cap,
//     and (c) has seen no journal activity since it last ran, is provably a
//     no-op — running it again would start from exactly the IR it already
//     saturated on. The runner records such a run as Skipped instead of
//     executing it, which is what makes fix(...) groups O(changed): the
//     second iteration only re-runs the passes whose input actually moved.
//
//   - Per-target plan memos: for ScopeRewriter passes, the analysis phase
//     memoizes (scope pointer, plan) per target. A memo is valid iff
//     ctx.Cache.ScopeOf returns the *same scope pointer* — the cache
//     validates scopes against def stamps on every lookup and rebuilds a
//     fresh Scope value whenever anything in the closure was touched, so
//     pointer identity is an airtight "nothing in this scope changed" proof.
//     (Walking stamps here instead would have a hole: a scope that *shrank*
//     keeps only young defs, yet its cached Defs set still names the old
//     ones.)
//
// Neither mechanism reorders or seeds work: skipped work is provably a
// no-op, so the sequence of node creations — and hence gid assignment and
// printed IR — is byte-identical to a non-incremental run.

import (
	"os"

	"thorin/internal/analysis"
	"thorin/internal/ir"
)

// SelfFixpointing is the opt-in marker for passes whose Run iterates to an
// internal fixpoint: immediately re-running such a pass on unchanged IR is a
// no-op by construction. Only marked passes are ever skipped; synthetic or
// single-shot passes run every time they are named.
//
// A marked pass whose run hits an internal iteration bound must report
// Result.Saturated — a saturated run did NOT reach its fixpoint, so the
// runner may never skip the follow-up run.
type SelfFixpointing interface {
	Pass
	// SelfFixpointing is a marker method; implementations do nothing.
	SelfFixpointing()
}

// passRecord is the runner's knowledge about one pass name: clean means the
// pass ran after the last journal activity (re-running it now would be a
// no-op, saturation aside).
type passRecord struct {
	clean     bool
	saturated bool
}

// planMemo caches one target's analysis result together with the scope
// pointer it was computed from. Valid iff ctx.Cache.ScopeOf still returns
// the identical pointer.
type planMemo struct {
	scope *analysis.Scope
	plan  any
}

// incrementalDefault reads the THORIN_INCREMENTAL environment variable:
// "0"/"off"/"false" disable journal-driven skipping (every pass runs every
// time it is named, as before PR 5); anything else leaves it on.
func incrementalDefault() bool {
	switch os.Getenv("THORIN_INCREMENTAL") {
	case "0", "off", "false":
		return false
	}
	return true
}

// noteDirty drains the world's change journal. If anything was journaled,
// every pass record except the named one goes dirty: their input moved, so
// their next occurrence must actually run. The exception is the pass that
// produced the activity itself — it just saturated on the result of its own
// rewrites, so it stays clean.
//
// Called with except == "" (matches no pass) at Run start, so external
// mutations between pipeline runs on a reused context dirty everything.
func (c *Context) noteDirty(except string) {
	if len(c.World.DrainDirty()) == 0 {
		return
	}
	for name, rec := range c.passDone {
		if name != except {
			rec.clean = false
		}
	}
}

// passClean reports whether the named pass may be skipped: it ran after the
// last journal activity and did not saturate.
func (c *Context) passClean(name string) bool {
	rec := c.passDone[name]
	return rec != nil && rec.clean && !rec.saturated
}

// markRun records a completed run of the named pass.
func (c *Context) markRun(name string, saturated bool) {
	rec := c.passDone[name]
	if rec == nil {
		rec = &passRecord{}
		c.passDone[name] = rec
	}
	rec.clean = true
	rec.saturated = saturated
}

// memoFor returns the named pass's per-target plan memo table, creating it
// on first use.
func (c *Context) memoFor(name string) map[*ir.Continuation]*planMemo {
	m := c.memos[name]
	if m == nil {
		m = make(map[*ir.Continuation]*planMemo)
		c.memos[name] = m
	}
	return m
}
