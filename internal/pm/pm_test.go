package pm

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"thorin/internal/ir"
)

// testPass is a configurable fake pass for driver tests.
type testPass struct {
	name string
	fn   func(ctx *Context) Result
}

func (p testPass) Name() string { return p.name }

func (p testPass) Run(ctx *Context) (Result, error) { return p.fn(ctx), nil }

func init() {
	// A pass that reports a change the first `budget` times it runs and is
	// a no-op afterwards — the minimal fixpoint workload.
	Register(testPass{"t-tick", func(ctx *Context) Result {
		n, _ := ctx.Get("t.budget").(int)
		if n <= 0 {
			return Result{}
		}
		ctx.Put("t.budget", n-1)
		return Result{Rewrites: 1}
	}})
	// An unconditional no-op.
	Register(testPass{"t-nop", func(ctx *Context) Result { return Result{} }})
	// A pass that leaves structurally invalid IR behind: it jumps a fresh
	// continuation to itself with the wrong arity.
	Register(testPass{"t-corrupt", func(ctx *Context) Result {
		w := ctx.World
		c := w.Continuation(w.FnType(w.PrimType(ir.PrimI64)), "bad")
		c.SetExtern(true)
		c.Jump(c) // arity mismatch: c expects one argument
		return Result{Changed: true}
	}})
}

func newCtx() *Context { return NewContext(ir.NewWorld()) }

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the expected error
	}{
		{"", "empty pipeline spec"},
		{"   ", "empty pipeline spec"},
		{"nosuchpass", `unknown pass "nosuchpass"`},
		{"t-nop,nosuchpass", `unknown pass "nosuchpass"`},
		{"fix(t-nop", `unbalanced "fix("`},
		{"fix(t-nop,fix(t-nop)", `unbalanced "fix("`},
		{"fix t-nop", `"fix" must be followed by "("`},
		{"fix()", `unexpected ")"`},
		{"t-nop,", "ends where a pass name is expected"},
		{",t-nop", `unexpected ","`},
		{"t-nop)", `unexpected ")" after end`},
		{"t-nop(t-nop)", `unexpected "("`},
		{"t-nop t-nop", `unexpected "t-nop" after end`},
		{"t-nop;t-nop", "bad character ';'"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q): expected error, got none", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) = %v, want substring %q", tc.spec, err, tc.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"t-nop",
		"t-nop,t-tick",
		"fix(t-nop)",
		"t-nop, fix(t-tick ,t-nop) ,t-nop",
		"fix(t-nop,fix(t-tick))",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p.Spec != spec {
			t.Errorf("Spec = %q, want %q", p.Spec, spec)
		}
	}
}

func TestFixpointIteration(t *testing.T) {
	p, err := Parse("fix(t-tick,t-nop)")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ctx.Put("t.budget", 3)
	rep, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Three changing iterations plus the confirming no-op one.
	if got := len(rep.Runs); got != 8 {
		t.Fatalf("expected 8 pass runs (4 iterations x 2 passes), got %d: %+v", got, rep.Runs)
	}
	for i, iterChanged := range []bool{true, true, true, false} {
		if got := rep.IterChanged(i + 1); got != iterChanged {
			t.Errorf("IterChanged(%d) = %v, want %v", i+1, got, iterChanged)
		}
	}
	if rep.Saturated {
		t.Error("converged group must not be flagged saturated")
	}
	if rep.Rewrites() != 3 {
		t.Errorf("total rewrites = %d, want 3", rep.Rewrites())
	}
	last := rep.Runs[len(rep.Runs)-1]
	if last.Path != "fix" || last.Iter != 4 || last.Label() != "fix#4:t-nop" {
		t.Errorf("unexpected last run %+v", last)
	}
}

func TestFixpointSaturation(t *testing.T) {
	p, err := Parse("fix(t-tick)")
	if err != nil {
		t.Fatal(err)
	}
	p.MaxFixIters = 4
	ctx := newCtx()
	ctx.Put("t.budget", 1<<30) // never converges
	rep, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Saturated {
		t.Error("non-converging group must be flagged saturated")
	}
	if got := len(rep.Runs); got != 4 {
		t.Errorf("expected the iteration bound to stop the group at 4 runs, got %d", got)
	}
}

func TestNestedFix(t *testing.T) {
	p, err := Parse("fix(fix(t-tick),t-nop)")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ctx.Put("t.budget", 2)
	rep, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Inner group: iterations 1,2,3 (last one clean). Outer iteration 1
	// changed, so the outer group reruns: inner fires once more (clean),
	// then t-nop — and the outer group stops.
	var inner, nop int
	for _, r := range rep.Runs {
		switch r.Name {
		case "t-tick":
			if r.Path != "fix/fix" {
				t.Errorf("t-tick path = %q, want fix/fix", r.Path)
			}
			inner++
		case "t-nop":
			if r.Path != "fix" {
				t.Errorf("t-nop path = %q, want fix", r.Path)
			}
			nop++
		}
	}
	if inner != 4 || nop != 2 {
		t.Errorf("got %d inner and %d outer runs, want 4 and 2", inner, nop)
	}
}

func TestVerifyEachNamesOffendingPass(t *testing.T) {
	p, err := Parse("t-nop,t-corrupt,t-nop")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ctx.VerifyEach = true
	rep, err := p.Run(ctx)
	if err == nil {
		t.Fatal("expected verify-each to fail on corrupted IR")
	}
	if !strings.Contains(err.Error(), `pass "t-corrupt" left invalid IR`) {
		t.Errorf("error must name the offending pass: %v", err)
	}
	// The pipeline stops at the offending pass; the report records it.
	if got := len(rep.Runs); got != 2 {
		t.Fatalf("expected 2 recorded runs, got %d", got)
	}
	if rep.Runs[1].Err == "" {
		t.Error("failing run must record its error")
	}
}

func TestChangeDetectionByFingerprint(t *testing.T) {
	// t-corrupt reports Changed, but even without the flag the fingerprint
	// (new continuation allocated) must mark the run as changing.
	p, err := Parse("t-corrupt")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	rep, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Runs[0]
	if !r.Changed || r.ContsAfter != r.ContsBefore+1 {
		t.Errorf("run must be marked changed with one more continuation: %+v", r)
	}
}

func TestReportJSON(t *testing.T) {
	p, err := Parse("fix(t-tick)")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ctx.Put("t.budget", 1)
	rep, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if decoded.Spec != rep.Spec || len(decoded.Runs) != len(rep.Runs) {
		t.Errorf("decoded report mismatch: %+v vs %+v", decoded, rep)
	}
	var text bytes.Buffer
	rep.WriteText(&text)
	if !strings.Contains(text.String(), "fix#1:t-tick") {
		t.Errorf("text report must label fix iterations:\n%s", text.String())
	}
}

func TestPassTotalsAggregatesIterations(t *testing.T) {
	p, err := Parse("fix(t-tick,t-nop)")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ctx.Put("t.budget", 2)
	rep, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	totals := rep.PassTotals()
	if len(totals) != 2 || totals[0].Name != "t-tick" || totals[1].Name != "t-nop" {
		t.Fatalf("unexpected totals %+v", totals)
	}
	if totals[0].Runs != 3 || totals[0].Rewrites != 2 {
		t.Errorf("t-tick totals = %+v, want 3 runs / 2 rewrites", totals[0])
	}
}

func TestRegisterPanics(t *testing.T) {
	for name, p := range map[string]Pass{
		"empty":     testPass{"", nil},
		"reserved":  testPass{"fix", nil},
		"duplicate": testPass{"t-nop", nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%s) must panic", name)
				}
			}()
			Register(p)
		}()
	}
}
