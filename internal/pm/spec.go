package pm

import (
	"fmt"
	"strings"
)

// The spec grammar (whitespace is insignificant):
//
//	spec := seq
//	seq  := item { "," item }
//	item := NAME | "fix" "(" seq ")"
//	NAME := [A-Za-z0-9_-]+
//
// Names resolve against the global registry at parse time, so a typo or an
// unregistered pass fails before anything runs. fix groups nest.

// item is one element of a parsed pipeline: a single pass or a fix group.
type item interface {
	spec() string
}

type passItem struct{ pass Pass }

func (p passItem) spec() string { return p.pass.Name() }

type fixItem struct{ items []item }

func (f fixItem) spec() string {
	parts := make([]string, len(f.items))
	for i, it := range f.items {
		parts[i] = it.spec()
	}
	return "fix(" + strings.Join(parts, ",") + ")"
}

type parser struct {
	toks []string
	pos  int
}

// tokenize splits spec into NAME, "," , "(" and ")" tokens.
func tokenize(spec string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(spec) {
		c := spec[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == ',' || c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case isNameByte(c):
			j := i
			for j < len(spec) && isNameByte(spec[j]) {
				j++
			}
			toks = append(toks, spec[i:j])
			i = j
		default:
			return nil, fmt.Errorf("pm: bad character %q in pipeline spec", c)
		}
	}
	return toks, nil
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-' || c == '_'
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

// parseSeq parses item{,item} until end of input or an unconsumed ")".
func (p *parser) parseSeq() ([]item, error) {
	var items []item
	for {
		it, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if p.peek() != "," {
			return items, nil
		}
		p.next() // consume ","
	}
}

func (p *parser) parseItem() (item, error) {
	tok := p.next()
	switch tok {
	case "":
		return nil, fmt.Errorf("pm: pipeline spec ends where a pass name is expected")
	case ",", ")", "(":
		return nil, fmt.Errorf("pm: unexpected %q in pipeline spec (expected a pass name)", tok)
	}
	if tok == "fix" {
		if p.peek() != "(" {
			return nil, fmt.Errorf(`pm: "fix" must be followed by "(": fix(pass,...)`)
		}
		p.next() // consume "("
		items, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		if p.peek() != ")" {
			return nil, fmt.Errorf(`pm: unbalanced "fix(" — missing ")"`)
		}
		p.next() // consume ")"
		return fixItem{items: items}, nil
	}
	pass, ok := Lookup(tok)
	if !ok {
		return nil, fmt.Errorf("pm: unknown pass %q (registered: %s)",
			tok, strings.Join(Names(), ", "))
	}
	return passItem{pass: pass}, nil
}

// Parse compiles a pipeline spec string against the global registry.
func Parse(spec string) (*Pipeline, error) {
	toks, err := tokenize(spec)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("pm: empty pipeline spec")
	}
	p := &parser{toks: toks}
	items, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	if rest := p.peek(); rest != "" {
		return nil, fmt.Errorf("pm: unexpected %q after end of pipeline spec", rest)
	}
	return &Pipeline{Spec: spec, items: items, MaxFixIters: DefaultMaxFixIters}, nil
}

// StripPass returns spec with every occurrence of the named pass removed
// (fix groups that become empty disappear with their contents). The boolean
// reports whether anything was removed. This is how the driver's graceful
// degradation policy retries a pipeline without its faulting pass.
func StripPass(spec, name string) (string, bool, error) {
	pl, err := Parse(spec)
	if err != nil {
		return "", false, err
	}
	stripped, removed := stripItems(pl.items, name)
	parts := make([]string, len(stripped))
	for i, it := range stripped {
		parts[i] = it.spec()
	}
	return strings.Join(parts, ","), removed, nil
}

func stripItems(items []item, name string) ([]item, bool) {
	var out []item
	removed := false
	for _, it := range items {
		switch it := it.(type) {
		case passItem:
			if it.pass.Name() == name {
				removed = true
				continue
			}
			out = append(out, it)
		case fixItem:
			sub, rm := stripItems(it.items, name)
			removed = removed || rm
			if len(sub) > 0 {
				out = append(out, fixItem{items: sub})
			}
		}
	}
	return out, removed
}

// MustParse is Parse for known-good specs (the canonical ones the driver
// builds); it panics on error.
func MustParse(spec string) *Pipeline {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}
