package pm

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// PassPanicError is a pass panic converted into a value: the pass manager
// runs every pass invocation (and every parallel analysis worker) under
// recover, so an invariant slip inside one pass aborts that pipeline with a
// structured error instead of taking down the whole process (and, under
// -jobs, a whole worker pool). The original panic value and stack are
// preserved for the crash artifact.
type PassPanicError struct {
	// Pass is the registered name of the panicking pass.
	Pass string
	// Target names the continuation whose Analyze/Commit panicked, "" when
	// the panic happened outside a per-target phase.
	Target string
	// Value is the value passed to panic().
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

func (e *PassPanicError) Error() string {
	if e.Target != "" {
		return fmt.Sprintf("pm: pass %q panicked on %s: %v", e.Pass, e.Target, e.Value)
	}
	return fmt.Sprintf("pm: pass %q panicked: %v", e.Pass, e.Value)
}

// PassError attributes an ordinary (non-panic) pass failure to the pass by
// name, so policies like the driver's graceful degradation can strip the
// faulting pass and retry.
type PassError struct {
	Pass string
	// Verify marks a per-pass ir.Verify failure (the pass ran but left
	// invalid IR) as opposed to the pass itself returning an error.
	Verify bool
	Err    error
}

func (e *PassError) Error() string {
	if e.Verify {
		return fmt.Sprintf("pm: pass %q left invalid IR: %v", e.Pass, e.Err)
	}
	return fmt.Sprintf("pm: pass %q failed: %v", e.Pass, e.Err)
}
func (e *PassError) Unwrap() error { return e.Err }

// FailedPass extracts the offending pass name from a pipeline error. It
// recognizes both panic conversions and ordinary pass failures (including
// per-pass verification failures).
func FailedPass(err error) (string, bool) {
	var pp *PassPanicError
	if errors.As(err, &pp) {
		return pp.Pass, true
	}
	var pe *PassError
	if errors.As(err, &pe) {
		return pe.Pass, true
	}
	return "", false
}

// guard runs f, converting a panic into a *PassPanicError attributed to
// (pass, target). It is the containment boundary for every pass phase: the
// worker that recovers keeps draining its queue, so the scheduler never
// leaks goroutines on a fault.
func guard(pass, target string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PassPanicError{Pass: pass, Target: target, Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}
