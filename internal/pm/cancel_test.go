package pm

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"thorin/internal/ir"
)

func init() {
	// A pass that always reports a change and cancels the run context (put
	// on the blackboard) once it has run its configured number of times —
	// the fixture for the between-pass / between-iteration cancellation
	// seams.
	Register(testPass{"t-cancel-tick", func(ctx *Context) Result {
		n, _ := ctx.Get("cancel.after").(int)
		runs, _ := ctx.Get("cancel.runs").(int)
		runs++
		ctx.Put("cancel.runs", runs)
		if runs >= n {
			ctx.Get("cancel.fn").(context.CancelFunc)()
		}
		return Result{Rewrites: 1}
	}})
}

// TestCancelBetweenPasses: a context canceled mid-pipeline stops the run at
// the next pass boundary with ErrCanceled; later passes never start.
func TestCancelBetweenPasses(t *testing.T) {
	pl, err := Parse("t-cancel-tick,t-cancel-tick,t-cancel-tick,t-cancel-tick")
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx := NewContext(ir.NewWorld())
	ctx.Ctx = cctx
	ctx.Put("cancel.after", 2)
	ctx.Put("cancel.fn", cancel)

	rep, rerr := pl.Run(ctx)
	if !errors.Is(rerr, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", rerr)
	}
	if runs := ctx.Get("cancel.runs").(int); runs != 2 {
		t.Errorf("pass ran %d times after cancellation at run 2", runs)
	}
	if len(rep.Runs) != 2 {
		t.Errorf("report holds %d runs, want 2", len(rep.Runs))
	}
}

// TestCancelBetweenFixIterations: cancellation inside a fix(...) group stops
// the iteration loop (the per-pass budget check is the seam), not just the
// top-level sequence.
func TestCancelBetweenFixIterations(t *testing.T) {
	pl, err := Parse("fix(t-cancel-tick)")
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx := NewContext(ir.NewWorld())
	ctx.Ctx = cctx
	ctx.Put("cancel.after", 3)
	ctx.Put("cancel.fn", cancel)

	_, rerr := pl.Run(ctx)
	if !errors.Is(rerr, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", rerr)
	}
	if runs := ctx.Get("cancel.runs").(int); runs != 3 {
		t.Errorf("fix iterated %d times after cancellation at iteration 3", runs)
	}
}

// TestContextDeadlineMapsToErrDeadline: an expired context reads as a
// deadline overrun, matching the wall-clock budget vocabulary, so callers
// distinguish "took too long" from "client went away".
func TestContextDeadlineMapsToErrDeadline(t *testing.T) {
	cctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	ctx := NewContext(ir.NewWorld())
	ctx.Ctx = cctx

	pl, err := Parse("t-nop")
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := pl.Run(ctx)
	if !errors.Is(rerr, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", rerr)
	}
	if errors.Is(rerr, ErrCanceled) {
		t.Error("deadline expiry must not read as cancellation")
	}
}

// cancellingRewriter cancels the run context during its Nth Analyze (or
// first Commit) and counts phase entries, so the tests can assert how much
// work ran after the cancellation point.
type cancellingRewriter struct {
	targets  []*ir.Continuation
	cancel   context.CancelFunc
	inCommit bool
	analyzed atomic.Int64
	commits  atomic.Int64
}

func (r *cancellingRewriter) Name() string { return "cancelling" }
func (r *cancellingRewriter) Run(*Context) (Result, error) {
	return Result{}, errors.New("Run must not be called for a ScopeRewriter")
}
func (r *cancellingRewriter) Targets(*Context) []*ir.Continuation { return r.targets }
func (r *cancellingRewriter) Analyze(_ *Context, c *ir.Continuation) (any, error) {
	if r.analyzed.Add(1) == 1 && !r.inCommit {
		r.cancel()
	}
	return "plan", nil
}
func (r *cancellingRewriter) Commit(_ *Context, c *ir.Continuation, plan any) (Result, error) {
	if r.commits.Add(1) == 1 && r.inCommit {
		r.cancel()
	}
	return Result{Rewrites: 1}, nil
}
func (r *cancellingRewriter) Finish(*Context) (Result, error) { return Result{}, nil }

// TestCancelStopsParallelAnalyze: a context canceled while the parallel
// analysis phase is running stops every worker at its next target — the
// "abandoned request frees its jobs-pool workers" guarantee — at every jobs
// level, with no commits applied.
func TestCancelStopsParallelAnalyze(t *testing.T) {
	const n = 64
	for _, jobs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			w, targets := fakeWorldTargets(n)
			cctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			r := &cancellingRewriter{targets: targets, cancel: cancel}
			ctx := NewContext(w)
			ctx.Jobs = jobs
			ctx.Ctx = cctx

			_, _, _, _, err := runScoped(ctx, r)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			// Every worker may have had one Analyze in flight when the
			// cancel landed; nothing beyond that bound may run, and the
			// commit phase must never start.
			if got := r.analyzed.Load(); got > int64(jobs) {
				t.Errorf("%d targets analyzed after cancellation, want at most %d (one in flight per worker)", got, jobs)
			}
			if got := r.commits.Load(); got != 0 {
				t.Errorf("%d commits ran on a canceled pass", got)
			}
		})
	}
}

// TestCancelStopsCommitLoop: cancellation during the sequential commit
// phase stops before the next commit; the partially-committed world is the
// caller's to discard.
func TestCancelStopsCommitLoop(t *testing.T) {
	w, targets := fakeWorldTargets(8)
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := &cancellingRewriter{targets: targets, cancel: cancel, inCommit: true}
	ctx := NewContext(w)
	ctx.Ctx = cctx

	_, _, _, _, err := runScoped(ctx, r)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := r.commits.Load(); got != 1 {
		t.Errorf("%d commits ran, want exactly the one that canceled", got)
	}
}
