package pm

import (
	"testing"
)

// markedPass is a fake pass that opts into incremental skipping.
type markedPass struct {
	name string
	fn   func(ctx *Context) Result
}

func (p markedPass) Name() string                     { return p.name }
func (p markedPass) Run(ctx *Context) (Result, error) { return p.fn(ctx), nil }
func (p markedPass) SelfFixpointing()                 {}

func bump(ctx *Context, key string) int {
	n, _ := ctx.Get(key).(int)
	ctx.Put(key, n+1)
	return n + 1
}

func init() {
	// A self-fixpointing no-op: eligible for skipping as soon as it ran once
	// with no journal activity since.
	Register(markedPass{"t-fix", func(ctx *Context) Result {
		bump(ctx, "t-fix.runs")
		return Result{}
	}})
	// A self-fixpointing pass that always reports saturation: never
	// skippable, no matter how quiet the journal is.
	Register(markedPass{"t-satfix", func(ctx *Context) Result {
		bump(ctx, "t-satfix.runs")
		return Result{Saturated: true}
	}})
	// An unmarked pass that journals a continuation creation.
	Register(testPass{"t-mut", func(ctx *Context) Result {
		w := ctx.World
		w.Continuation(w.FnType(), "tmut")
		return Result{Changed: true}
	}})
}

func runSpec(t *testing.T, spec string, incremental bool) (*Context, *Report) {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ctx.Incremental = incremental
	rep, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, rep
}

func TestIncrementalSkipsCleanMarkedPass(t *testing.T) {
	ctx, rep := runSpec(t, "t-fix,t-fix", true)
	if got, _ := ctx.Get("t-fix.runs").(int); got != 1 {
		t.Fatalf("marked pass executed %d times, want 1 (second occurrence skipped)", got)
	}
	if len(rep.Runs) != 2 || !rep.Runs[1].Skipped {
		t.Fatalf("second run not recorded as skipped: %+v", rep.Runs)
	}
	skip := rep.Runs[1]
	if skip.Rewrites != 0 || skip.Changed || skip.Err != "" {
		t.Fatalf("skipped run must be a recorded no-op, got %+v", skip)
	}
	if rep.Skips() != 1 {
		t.Fatalf("Skips() = %d, want 1", rep.Skips())
	}
}

func TestIncrementalOffRunsEverything(t *testing.T) {
	ctx, rep := runSpec(t, "t-fix,t-fix", false)
	if got, _ := ctx.Get("t-fix.runs").(int); got != 2 {
		t.Fatalf("with incremental off the pass executed %d times, want 2", got)
	}
	if rep.Skips() != 0 {
		t.Fatalf("Skips() = %d, want 0 with incremental off", rep.Skips())
	}
}

func TestJournalActivityPreventsSkip(t *testing.T) {
	ctx, rep := runSpec(t, "t-fix,t-mut,t-fix", true)
	if got, _ := ctx.Get("t-fix.runs").(int); got != 2 {
		t.Fatalf("marked pass executed %d times, want 2 (mutation in between)", got)
	}
	if rep.Skips() != 0 {
		t.Fatalf("Skips() = %d, want 0: the journal was not quiet", rep.Skips())
	}
}

func TestSaturatedPassNotSkipped(t *testing.T) {
	ctx, _ := runSpec(t, "t-satfix,t-satfix", true)
	if got, _ := ctx.Get("t-satfix.runs").(int); got != 2 {
		t.Fatalf("saturated pass executed %d times, want 2 (saturation forbids skipping)", got)
	}
}

func TestUnmarkedPassNeverSkipped(t *testing.T) {
	_, rep := runSpec(t, "t-nop,t-nop", true)
	if rep.Skips() != 0 {
		t.Fatalf("unmarked pass skipped %d times; skipping is opt-in via SelfFixpointing", rep.Skips())
	}
}
