// Package pm is the pass manager: it treats the optimization pipeline as
// data. Passes are named units registered in a global registry; a Pipeline
// is parsed from a spec string such as
//
//	cleanup,pe,fix(cff,contify,mem2reg,inline-once),cleanup,closure
//
// where the fix(...) combinator iterates a pass group until the IR stops
// changing. The runner memoizes analyses in a shared cache between
// mutation-free pass runs and records per-pass instrumentation (wall time,
// rewrites applied, IR size deltas) into a Report.
package pm

import (
	"context"
	"os"
	"strconv"

	"thorin/internal/analysis"
	"thorin/internal/ir"
)

// Result is what one pass run reports back to the driver.
type Result struct {
	// Rewrites counts the rewrites the pass applied (its native unit:
	// specializations, promoted slots, inlined calls, ...). A non-zero
	// count marks the pass as changing for fixpoint purposes.
	Rewrites int
	// Changed forces the pass to count as changing even with zero
	// rewrites. The runner additionally fingerprints the world before and
	// after each run, so a pass that forgets to set either still triggers
	// invalidation when it allocates or removes nodes.
	Changed bool
	// Saturated reports that the pass hit an internal iteration bound while
	// still rewriting: it did NOT reach its fixpoint, so the incremental
	// runner must not skip its next occurrence even if the journal is quiet.
	Saturated bool
}

// Pass is one named unit of IR transformation (or inspection).
// Implementations must be stateless: the same Pass value is shared by every
// pipeline that names it, and all per-run state lives in the Context.
type Pass interface {
	Name() string
	Run(ctx *Context) (Result, error)
}

// ScopeRewriter is the optional interface of passes whose work decomposes
// into independent per-scope units, which is what the paper's implicit-scope
// design makes possible: each top-level continuation's scope is computable
// from the dependency graph alone, so its analysis needs no global ordering.
//
// The runner executes such passes in three phases:
//
//  1. Targets once, to enumerate the rewrite roots in deterministic order;
//  2. Analyze per target, in parallel across ctx.Jobs workers — Analyze
//     MUST be read-only on the world (planning only; creating IR nodes here
//     would make gid assignment, and hence printed IR, depend on worker
//     scheduling);
//  3. Commit per target, sequentially in Targets order, applying the plan.
//     Finish runs once after all commits (trailing cleanup).
//
// Because hash-consing makes node identity order-independent and all
// mutation is confined to the sequential phases, a ScopeRewriter produces
// byte-identical IR at every jobs level.
type ScopeRewriter interface {
	Pass
	// Targets returns the rewrite roots. Order defines commit order.
	Targets(ctx *Context) []*ir.Continuation
	// Analyze plans the rewrite of one target without mutating the world.
	// The plan may be nil (nothing to do for this target).
	Analyze(ctx *Context, c *ir.Continuation) (any, error)
	// Commit applies a plan produced by Analyze.
	Commit(ctx *Context, c *ir.Continuation, plan any) (Result, error)
	// Finish runs after the last commit (e.g. a trailing cleanup sweep).
	Finish(ctx *Context) (Result, error)
}

// Context carries the per-run state a pass may use: the world under
// transformation, the shared analysis cache, and an open blackboard for
// pass-family state (e.g. accumulated typed statistics).
type Context struct {
	World *ir.World
	// Cache memoizes ScopeOf/CFG/domtree per continuation, validating every
	// lookup against the world's rewrite generation (stale entries rebuild
	// themselves). In non-incremental mode the runner additionally
	// invalidates it wholesale after every pass that changed the IR.
	Cache *analysis.Cache
	// VerifyEach makes the runner call ir.Verify after every pass and
	// abort the pipeline naming the offending pass.
	VerifyEach bool
	// Jobs is the number of workers used for the parallel analysis phase of
	// ScopeRewriter passes. Values below 2 run sequentially. The result is
	// identical at every jobs level; only wall-clock time changes.
	Jobs int
	// Budget bounds the run's fixpoint iterations, IR size and wall-clock
	// time. The zero value imposes no extra limits.
	Budget Budget
	// Ctx, when non-nil, cancels the run cooperatively: the pipeline checks
	// it at every budget seam — before and after each pass (hence between
	// fixpoint iterations) and between targets inside the parallel analysis
	// phase — and stops with ErrCanceled (or ErrDeadline when the context
	// timed out). This is how an abandoned compile-server request frees its
	// jobs-pool workers instead of compiling into the void.
	Ctx context.Context
	// Incremental enables journal-driven work skipping (see incremental.go):
	// self-fixpointing passes whose input has not changed since they last ran
	// are recorded as Skipped instead of executed, and ScopeRewriter analysis
	// plans are memoized per target keyed by scope pointer identity. The
	// produced IR is byte-identical either way; only the work differs. On by
	// default; THORIN_INCREMENTAL=0 (or off/false) disables it, as does the
	// driver's -incremental=off escape hatch.
	Incremental bool

	data     map[string]any
	passDone map[string]*passRecord
	memos    map[string]map[*ir.Continuation]*planMemo
}

// NewContext creates a run context for w with a fresh analysis cache. The
// default parallelism is 1 (fully sequential); the THORIN_JOBS environment
// variable overrides it, which is how the race-detector CI target forces
// the parallel scheduler through every existing test path.
func NewContext(w *ir.World) *Context {
	jobs := 1
	if s := os.Getenv("THORIN_JOBS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			jobs = n
		}
	}
	return &Context{
		World:       w,
		Cache:       analysis.NewCache(),
		Jobs:        jobs,
		Incremental: incrementalDefault(),
		data:        make(map[string]any),
		passDone:    make(map[string]*passRecord),
		memos:       make(map[string]map[*ir.Continuation]*planMemo),
	}
}

// Put stores a blackboard value under key.
func (c *Context) Put(key string, v any) { c.data[key] = v }

// Get returns the blackboard value under key, or nil.
func (c *Context) Get(key string) any { return c.data[key] }
