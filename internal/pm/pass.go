// Package pm is the pass manager: it treats the optimization pipeline as
// data. Passes are named units registered in a global registry; a Pipeline
// is parsed from a spec string such as
//
//	cleanup,pe,fix(cff,contify,mem2reg,inline-once),cleanup,closure
//
// where the fix(...) combinator iterates a pass group until the IR stops
// changing. The runner memoizes analyses in a shared cache between
// mutation-free pass runs and records per-pass instrumentation (wall time,
// rewrites applied, IR size deltas) into a Report.
package pm

import (
	"thorin/internal/analysis"
	"thorin/internal/ir"
)

// Result is what one pass run reports back to the driver.
type Result struct {
	// Rewrites counts the rewrites the pass applied (its native unit:
	// specializations, promoted slots, inlined calls, ...). A non-zero
	// count marks the pass as changing for fixpoint purposes.
	Rewrites int
	// Changed forces the pass to count as changing even with zero
	// rewrites. The runner additionally fingerprints the world before and
	// after each run, so a pass that forgets to set either still triggers
	// invalidation when it allocates or removes nodes.
	Changed bool
}

// Pass is one named unit of IR transformation (or inspection).
// Implementations must be stateless: the same Pass value is shared by every
// pipeline that names it, and all per-run state lives in the Context.
type Pass interface {
	Name() string
	Run(ctx *Context) (Result, error)
}

// Context carries the per-run state a pass may use: the world under
// transformation, the shared analysis cache, and an open blackboard for
// pass-family state (e.g. accumulated typed statistics).
type Context struct {
	World *ir.World
	// Cache memoizes ScopeOf/CFG/domtree per continuation. The runner
	// invalidates it wholesale after every pass that changed the IR; a
	// pass that mutates mid-run and keeps reading analyses must invalidate
	// eagerly itself.
	Cache *analysis.Cache
	// VerifyEach makes the runner call ir.Verify after every pass and
	// abort the pipeline naming the offending pass.
	VerifyEach bool

	data map[string]any
}

// NewContext creates a run context for w with a fresh analysis cache.
func NewContext(w *ir.World) *Context {
	return &Context{World: w, Cache: analysis.NewCache(), data: make(map[string]any)}
}

// Put stores a blackboard value under key.
func (c *Context) Put(key string, v any) { c.data[key] = v }

// Get returns the blackboard value under key, or nil.
func (c *Context) Get(key string) any { return c.data[key] }
