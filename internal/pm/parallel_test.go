package pm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"thorin/internal/ir"
)

// fakeRewriter implements ScopeRewriter over a fixed target list, recording
// the commit order and which targets were analyzed.
type fakeRewriter struct {
	targets []*ir.Continuation
	failAt  int // index whose Analyze errors; -1 for none

	mu       sync.Mutex
	analyzed map[*ir.Continuation]int
	commits  []*ir.Continuation
	finished int
}

func (f *fakeRewriter) Name() string { return "fake" }

func (f *fakeRewriter) Run(ctx *Context) (Result, error) {
	return Result{}, errors.New("Run must not be called for a ScopeRewriter")
}

func (f *fakeRewriter) Targets(ctx *Context) []*ir.Continuation { return f.targets }

func (f *fakeRewriter) Analyze(ctx *Context, c *ir.Continuation) (any, error) {
	f.mu.Lock()
	f.analyzed[c]++
	f.mu.Unlock()
	for i, t := range f.targets {
		if t == c && i == f.failAt {
			return nil, fmt.Errorf("analyze failed on target %d", i)
		}
	}
	return c.Name() + "-plan", nil
}

func (f *fakeRewriter) Commit(ctx *Context, c *ir.Continuation, plan any) (Result, error) {
	if plan != c.Name()+"-plan" {
		return Result{}, fmt.Errorf("commit of %s got plan %v", c.Name(), plan)
	}
	f.commits = append(f.commits, c)
	return Result{Rewrites: 1}, nil
}

func (f *fakeRewriter) Finish(ctx *Context) (Result, error) {
	f.finished++
	return Result{Rewrites: 10}, nil
}

func fakeWorldTargets(n int) (*ir.World, []*ir.Continuation) {
	w := ir.NewWorld()
	targets := make([]*ir.Continuation, n)
	for i := range targets {
		targets[i] = w.Continuation(w.FnType(w.MemType()), fmt.Sprintf("t%d", i))
	}
	return w, targets
}

func TestRunScopedCommitsInTargetOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 100} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			w, targets := fakeWorldTargets(17)
			fr := &fakeRewriter{targets: targets, failAt: -1, analyzed: map[*ir.Continuation]int{}}
			ctx := NewContext(w)
			ctx.Jobs = jobs

			res, parallelism, stats, _, err := runScoped(ctx, fr)
			if err != nil {
				t.Fatal(err)
			}
			if want := min(jobs, len(targets)); parallelism != want {
				t.Errorf("parallelism = %d, want %d", parallelism, want)
			}
			if res.Rewrites != len(targets)+10 {
				t.Errorf("rewrites = %d, want %d", res.Rewrites, len(targets)+10)
			}
			if fr.finished != 1 {
				t.Errorf("finish ran %d times", fr.finished)
			}
			if len(fr.commits) != len(targets) {
				t.Fatalf("%d commits for %d targets", len(fr.commits), len(targets))
			}
			for i, c := range fr.commits {
				if c != targets[i] {
					t.Fatalf("commit %d = %s; commits must follow target order", i, c.Name())
				}
			}
			analyzedTotal := 0
			for _, n := range fr.analyzed {
				if n != 1 {
					t.Error("a target was analyzed more than once")
				}
				analyzedTotal += n
			}
			if analyzedTotal != len(targets) {
				t.Errorf("analyzed %d targets, want %d", analyzedTotal, len(targets))
			}
			workerTargets := 0
			for _, ws := range stats {
				workerTargets += ws.Targets
			}
			if workerTargets != len(targets) {
				t.Errorf("worker stats cover %d targets, want %d", workerTargets, len(targets))
			}
		})
	}
}

func TestRunScopedFailsDeterministically(t *testing.T) {
	// Whatever the worker schedule, the reported error is the first failing
	// target in target order and no commit runs.
	for _, jobs := range []int{1, 4} {
		w, targets := fakeWorldTargets(9)
		fr := &fakeRewriter{targets: targets, failAt: 3, analyzed: map[*ir.Continuation]int{}}
		ctx := NewContext(w)
		ctx.Jobs = jobs

		_, _, _, _, err := runScoped(ctx, fr)
		if err == nil || err.Error() != "analyze failed on target 3" {
			t.Fatalf("jobs=%d: err = %v, want the target-order first failure", jobs, err)
		}
		if len(fr.commits) != 0 {
			t.Fatalf("jobs=%d: %d commits ran despite analysis failure", jobs, len(fr.commits))
		}
	}
}

func TestRunScopedNoTargets(t *testing.T) {
	w, _ := fakeWorldTargets(0)
	fr := &fakeRewriter{failAt: -1, analyzed: map[*ir.Continuation]int{}}
	ctx := NewContext(w)
	ctx.Jobs = 8
	res, _, _, _, err := runScoped(ctx, fr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 10 || fr.finished != 1 {
		t.Fatal("finish must still run once with no targets")
	}
}
