package pm

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"thorin/internal/ir"
)

// panickyRewriter is a ScopeRewriter that panics in one configurable phase:
// "targets", "analyze" (on target panicAt), "commit" (on target panicAt) or
// "finish". It is the fault-injection fixture for the scheduler tests.
type panickyRewriter struct {
	targets []*ir.Continuation
	phase   string
	panicAt int

	commits int
}

func (p *panickyRewriter) Name() string { return "panicky" }

func (p *panickyRewriter) Run(ctx *Context) (Result, error) {
	return Result{}, errors.New("Run must not be called for a ScopeRewriter")
}

func (p *panickyRewriter) Targets(ctx *Context) []*ir.Continuation {
	if p.phase == "targets" {
		panic("boom in targets")
	}
	return p.targets
}

func (p *panickyRewriter) Analyze(ctx *Context, c *ir.Continuation) (any, error) {
	if p.phase == "analyze" && c == p.targets[p.panicAt] {
		panic(fmt.Sprintf("boom on %s", c.Name()))
	}
	return "plan", nil
}

func (p *panickyRewriter) Commit(ctx *Context, c *ir.Continuation, plan any) (Result, error) {
	if p.phase == "commit" && c == p.targets[p.panicAt] {
		panic(fmt.Sprintf("boom on %s", c.Name()))
	}
	p.commits++
	return Result{Rewrites: 1}, nil
}

func (p *panickyRewriter) Finish(ctx *Context) (Result, error) {
	if p.phase == "finish" {
		panic("boom in finish")
	}
	return Result{}, nil
}

// stableGoroutines polls until the goroutine count settles back to at most
// base (background GC helpers may come and go), failing after one second.
func stableGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", base, n)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestScopedPanicIsolation is the fault-containment regression of the issue:
// a pass that panics on its Nth target must not crash the process, deadlock
// or leak goroutines at any jobs level, and must report the same
// PassPanicError whatever the worker schedule.
func TestScopedPanicIsolation(t *testing.T) {
	const panicAt = 5
	var wantErr string
	for _, jobs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			w, targets := fakeWorldTargets(17)
			pr := &panickyRewriter{targets: targets, phase: "analyze", panicAt: panicAt}
			ctx := NewContext(w)
			ctx.Jobs = jobs

			base := runtime.NumGoroutine()
			_, _, _, _, err := runScoped(ctx, pr)
			stableGoroutines(t, base)

			var pp *PassPanicError
			if !errors.As(err, &pp) {
				t.Fatalf("err = %v, want a *PassPanicError", err)
			}
			if pp.Pass != "panicky" || pp.Target != targets[panicAt].Name() {
				t.Errorf("panic attributed to pass %q target %q, want panicky/%s",
					pp.Pass, pp.Target, targets[panicAt].Name())
			}
			if len(pp.Stack) == 0 {
				t.Error("recovered panic must carry a stack trace")
			}
			if wantErr == "" {
				wantErr = err.Error()
			} else if err.Error() != wantErr {
				t.Errorf("error differs across jobs levels:\n%q\nvs\n%q", err.Error(), wantErr)
			}
			if pr.commits != 0 {
				t.Errorf("%d commits ran despite an analysis panic", pr.commits)
			}
		})
	}
	if !strings.Contains(wantErr, `pm: pass "panicky" panicked on t5: boom on t5`) {
		t.Errorf("unexpected panic message %q", wantErr)
	}
}

// TestScopedPanicPhases checks the remaining containment boundaries: panics
// in Targets, Commit and Finish all surface as attributed errors.
func TestScopedPanicPhases(t *testing.T) {
	for _, tc := range []struct {
		phase  string
		target string // expected PassPanicError.Target
	}{
		{"targets", ""},
		{"commit", "t3"},
		{"finish", ""},
	} {
		t.Run(tc.phase, func(t *testing.T) {
			w, targets := fakeWorldTargets(9)
			pr := &panickyRewriter{targets: targets, phase: tc.phase, panicAt: 3}
			ctx := NewContext(w)
			ctx.Jobs = 4
			_, _, _, _, err := runScoped(ctx, pr)
			var pp *PassPanicError
			if !errors.As(err, &pp) {
				t.Fatalf("err = %v, want a *PassPanicError", err)
			}
			if pp.Target != tc.target {
				t.Errorf("Target = %q, want %q", pp.Target, tc.target)
			}
			if tc.phase == "commit" && pr.commits != 3 {
				t.Errorf("%d commits before the panicking one, want 3", pr.commits)
			}
		})
	}
}

func init() {
	// A pass that panics unconditionally, for the pipeline-level tests.
	Register(testPass{"t-panic", func(ctx *Context) Result {
		panic("unreachable invariant")
	}})
}

func TestPipelinePanicNamesPass(t *testing.T) {
	p, err := Parse("t-nop,t-panic,t-nop")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(newCtx())
	if err == nil {
		t.Fatal("expected the panicking pass to fail the pipeline")
	}
	if !strings.Contains(err.Error(), `pm: pass "t-panic" panicked: unreachable invariant`) {
		t.Errorf("error must name the panicking pass: %v", err)
	}
	var pp *PassPanicError
	if !errors.As(err, &pp) || pp.Pass != "t-panic" {
		t.Fatalf("err = %v, want a *PassPanicError for t-panic", err)
	}
	if name, ok := FailedPass(err); !ok || name != "t-panic" {
		t.Errorf("FailedPass = %q,%v, want t-panic,true", name, ok)
	}
	// The report records the aborted run with its error.
	if len(rep.Runs) != 2 || rep.Runs[1].Err == "" {
		t.Errorf("report must record the panicking run: %+v", rep.Runs)
	}
}

func TestFailedPassOnOrdinaryError(t *testing.T) {
	p, err := Parse("t-nop,t-corrupt,t-nop")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ctx.VerifyEach = true
	_, err = p.Run(ctx)
	if name, ok := FailedPass(err); !ok || name != "t-corrupt" {
		t.Errorf("FailedPass = %q,%v, want t-corrupt,true", name, ok)
	}
	if name, ok := FailedPass(errors.New("unrelated")); ok {
		t.Errorf("FailedPass on unrelated error = %q, want none", name)
	}
}

func TestBudgetDeadline(t *testing.T) {
	p, err := Parse("t-nop")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ctx.Budget.Deadline = time.Now().Add(-time.Second)
	if _, err := p.Run(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestBudgetMaxNodes(t *testing.T) {
	// t-corrupt allocates a continuation (and its param), blowing a
	// one-node budget right after the pass.
	p, err := Parse("t-corrupt")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ctx.Budget.MaxNodes = 1
	if _, err := p.Run(ctx); !errors.Is(err, ErrNodeBudget) {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
}

func TestBudgetMaxFixpointIters(t *testing.T) {
	p, err := Parse("fix(t-tick)")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ctx.Put("t.budget", 1<<30) // never converges
	ctx.Budget.MaxFixpointIters = 3
	rep, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Saturated {
		t.Error("budget-bounded group must be flagged saturated")
	}
	if len(rep.Runs) != 3 {
		t.Errorf("expected the budget to stop the group at 3 runs, got %d", len(rep.Runs))
	}
}

func TestParseBudget(t *testing.T) {
	b, err := ParseBudget("iters=8,nodes=1000,time=5s")
	if err != nil {
		t.Fatal(err)
	}
	if b.MaxFixpointIters != 8 || b.MaxNodes != 1000 || b.Deadline.IsZero() {
		t.Errorf("unexpected budget %+v", b)
	}
	if b, err := ParseBudget(""); err != nil || b != (Budget{}) {
		t.Errorf("empty budget = %+v, %v", b, err)
	}
	for _, bad := range []string{"iters", "iters=x", "nodes=-1", "time=abc", "gas=5"} {
		if _, err := ParseBudget(bad); err == nil {
			t.Errorf("ParseBudget(%q): expected error", bad)
		}
	}
}

func TestStripPass(t *testing.T) {
	for _, tc := range []struct {
		spec, name, want string
		removed          bool
	}{
		{"t-nop,fix(t-tick,t-panic),t-nop", "t-panic", "t-nop,fix(t-tick),t-nop", true},
		{"t-nop,fix(t-panic)", "t-panic", "t-nop", true},
		{"t-nop,t-tick", "t-panic", "t-nop,t-tick", false},
		{"fix(fix(t-panic),t-nop)", "t-panic", "fix(t-nop)", true},
	} {
		got, removed, err := StripPass(tc.spec, tc.name)
		if err != nil {
			t.Fatalf("StripPass(%q, %q): %v", tc.spec, tc.name, err)
		}
		if got != tc.want || removed != tc.removed {
			t.Errorf("StripPass(%q, %q) = %q,%v; want %q,%v",
				tc.spec, tc.name, got, removed, tc.want, tc.removed)
		}
	}
	if _, _, err := StripPass("nosuchpass", "x"); err == nil {
		t.Error("StripPass with a bad spec must error")
	}
}
