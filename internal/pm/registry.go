package pm

import (
	"fmt"
	"sort"
	"sync"
)

// The global pass registry. Packages providing passes register them from
// init (the transform package registers the full standard set), so any
// importer can parse specs by name.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Pass)
)

// Register adds p to the global registry. It panics on an empty or
// duplicate name and on the reserved word "fix" — registration happens at
// init time, where a clash is a programming error.
func Register(p Pass) {
	name := p.Name()
	if name == "" {
		panic("pm: Register with empty pass name")
	}
	if name == "fix" {
		panic(`pm: pass name "fix" is reserved for the fixpoint combinator`)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("pm: duplicate pass %q", name))
	}
	registry[name] = p
}

// Lookup returns the registered pass of that name.
func Lookup(name string) (Pass, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Names returns all registered pass names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
