package pm

import (
	"sync"
	"sync/atomic"
	"time"

	"thorin/internal/ir"
)

// WorkerStat records one worker's share of a parallel analysis phase.
type WorkerStat struct {
	Worker  int           `json:"worker"`
	Targets int           `json:"targets"`
	Time    time.Duration `json:"time_ns"`
}

// analyzeOne runs one Analyze under the panic containment boundary: a
// panicking target produces a *PassPanicError in its error slot while the
// worker that recovered keeps draining the queue, so a fault never leaks
// goroutines or deadlocks the scheduler.
func analyzeOne(ctx *Context, sr ScopeRewriter, c *ir.Continuation) (plan any, err error) {
	err = guard(sr.Name(), c.Name(), func() error {
		var aerr error
		plan, aerr = sr.Analyze(ctx, c)
		return aerr
	})
	return plan, err
}

// runScoped drives one ScopeRewriter pass: enumerate targets, analyze them
// (in parallel when ctx.Jobs > 1), then commit sequentially in target order
// and finish. Analysis errors — including recovered panics — are surfaced
// in deterministic target order so a failing pipeline reports the same
// error at every jobs level.
func runScoped(ctx *Context, sr ScopeRewriter) (res Result, parallelism int, stats []WorkerStat, err error) {
	var targets []*ir.Continuation
	if err := guard(sr.Name(), "", func() error {
		targets = sr.Targets(ctx)
		return nil
	}); err != nil {
		return Result{}, 0, nil, err
	}
	jobs := ctx.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(targets) {
		jobs = len(targets)
	}
	if jobs < 1 {
		jobs = 1
	}

	plans := make([]any, len(targets))
	errs := make([]error, len(targets))
	stats = make([]WorkerStat, jobs)

	if jobs == 1 {
		start := time.Now()
		for i, c := range targets {
			plans[i], errs[i] = analyzeOne(ctx, sr, c)
		}
		stats[0] = WorkerStat{Worker: 0, Targets: len(targets), Time: time.Since(start)}
	} else {
		// Dynamic work stealing over a shared index: scopes vary wildly in
		// size, so static partitioning would leave workers idle.
		var next atomic.Int64
		var wg sync.WaitGroup
		for wi := 0; wi < jobs; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				start := time.Now()
				n := 0
				for {
					i := int(next.Add(1)) - 1
					if i >= len(targets) {
						break
					}
					plans[i], errs[i] = analyzeOne(ctx, sr, targets[i])
					n++
				}
				stats[wi] = WorkerStat{Worker: wi, Targets: n, Time: time.Since(start)}
			}(wi)
		}
		wg.Wait()
	}

	var total Result
	for i := range targets {
		if errs[i] != nil {
			return total, jobs, stats, errs[i]
		}
	}
	for i, c := range targets {
		c := c
		var cres Result
		err := guard(sr.Name(), c.Name(), func() error {
			var cerr error
			cres, cerr = sr.Commit(ctx, c, plans[i])
			return cerr
		})
		total.Rewrites += cres.Rewrites
		total.Changed = total.Changed || cres.Changed
		if err != nil {
			return total, jobs, stats, err
		}
	}
	var fres Result
	err = guard(sr.Name(), "", func() error {
		var ferr error
		fres, ferr = sr.Finish(ctx)
		return ferr
	})
	total.Rewrites += fres.Rewrites
	total.Changed = total.Changed || fres.Changed
	return total, jobs, stats, err
}
