package pm

import (
	"sync"
	"sync/atomic"
	"time"
)

// WorkerStat records one worker's share of a parallel analysis phase.
type WorkerStat struct {
	Worker  int           `json:"worker"`
	Targets int           `json:"targets"`
	Time    time.Duration `json:"time_ns"`
}

// runScoped drives one ScopeRewriter pass: enumerate targets, analyze them
// (in parallel when ctx.Jobs > 1), then commit sequentially in target order
// and finish. Analysis errors are surfaced in deterministic target order so
// a failing pipeline reports the same error at every jobs level.
func runScoped(ctx *Context, sr ScopeRewriter) (Result, int, []WorkerStat, error) {
	targets := sr.Targets(ctx)
	jobs := ctx.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(targets) {
		jobs = len(targets)
	}
	if jobs < 1 {
		jobs = 1
	}

	plans := make([]any, len(targets))
	errs := make([]error, len(targets))
	stats := make([]WorkerStat, jobs)

	if jobs == 1 {
		start := time.Now()
		for i, c := range targets {
			plans[i], errs[i] = sr.Analyze(ctx, c)
		}
		stats[0] = WorkerStat{Worker: 0, Targets: len(targets), Time: time.Since(start)}
	} else {
		// Dynamic work stealing over a shared index: scopes vary wildly in
		// size, so static partitioning would leave workers idle.
		var next atomic.Int64
		var wg sync.WaitGroup
		for wi := 0; wi < jobs; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				start := time.Now()
				n := 0
				for {
					i := int(next.Add(1)) - 1
					if i >= len(targets) {
						break
					}
					plans[i], errs[i] = sr.Analyze(ctx, targets[i])
					n++
				}
				stats[wi] = WorkerStat{Worker: wi, Targets: n, Time: time.Since(start)}
			}(wi)
		}
		wg.Wait()
	}

	var total Result
	for i := range targets {
		if errs[i] != nil {
			return total, jobs, stats, errs[i]
		}
	}
	for i, c := range targets {
		res, err := sr.Commit(ctx, c, plans[i])
		total.Rewrites += res.Rewrites
		total.Changed = total.Changed || res.Changed
		if err != nil {
			return total, jobs, stats, err
		}
	}
	res, err := sr.Finish(ctx)
	total.Rewrites += res.Rewrites
	total.Changed = total.Changed || res.Changed
	return total, jobs, stats, err
}
