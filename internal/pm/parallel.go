package pm

import (
	"sync"
	"sync/atomic"
	"time"

	"thorin/internal/analysis"
	"thorin/internal/ir"
)

// WorkerStat records one worker's share of a parallel analysis phase.
type WorkerStat struct {
	Worker  int           `json:"worker"`
	Targets int           `json:"targets"`
	Time    time.Duration `json:"time_ns"`
}

// analyzeOne runs one Analyze under the panic containment boundary: a
// panicking target produces a *PassPanicError in its error slot while the
// worker that recovered keeps draining the queue, so a fault never leaks
// goroutines or deadlocks the scheduler.
//
// With a non-nil memo table (incremental mode, self-fixpointing pass) it
// first resolves the target's current scope through the validating cache: if
// the memoized entry holds the *same scope pointer*, nothing in the target's
// closure changed since the plan was computed and the memoized plan is
// returned without re-analyzing. The memo table is read-only during the
// (possibly parallel) analysis phase — writes happen after the sequential
// commit phase — and the cache itself is concurrency-safe, so workers need
// no extra locking. The validation runs here, on the worker, rather than in
// a sequential pre-phase: ScopeOf both validates and pins the pointer in one
// step, so any in-scope mutation before this moment already produced a fresh
// pointer and therefore a miss.
func analyzeOne(ctx *Context, sr ScopeRewriter, c *ir.Continuation, memo map[*ir.Continuation]*planMemo) (plan any, scope *analysis.Scope, hit bool, err error) {
	err = guard(sr.Name(), c.Name(), func() error {
		if memo != nil {
			scope = ctx.Cache.ScopeOf(c)
			if m := memo[c]; m != nil && m.scope == scope {
				plan, hit = m.plan, true
				return nil
			}
		}
		var aerr error
		plan, aerr = sr.Analyze(ctx, c)
		return aerr
	})
	return plan, scope, hit, err
}

// runScoped drives one ScopeRewriter pass: enumerate targets, analyze them
// (in parallel when ctx.Jobs > 1), then commit sequentially in target order
// and finish. Analysis errors — including recovered panics — are surfaced
// in deterministic target order so a failing pipeline reports the same
// error at every jobs level.
func runScoped(ctx *Context, sr ScopeRewriter) (res Result, parallelism int, stats []WorkerStat, memoHits int, err error) {
	var targets []*ir.Continuation
	if err := guard(sr.Name(), "", func() error {
		targets = sr.Targets(ctx)
		return nil
	}); err != nil {
		return Result{}, 0, nil, 0, err
	}
	var memo map[*ir.Continuation]*planMemo
	if ctx.Incremental {
		if _, ok := sr.(SelfFixpointing); ok {
			memo = ctx.memoFor(sr.Name())
		}
	}
	jobs := ctx.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(targets) {
		jobs = len(targets)
	}
	if jobs < 1 {
		jobs = 1
	}

	plans := make([]any, len(targets))
	scopes := make([]*analysis.Scope, len(targets))
	hits := make([]bool, len(targets))
	errs := make([]error, len(targets))
	stats = make([]WorkerStat, jobs)

	// Cancellation seam for the analysis phase: each worker re-checks the
	// run context between targets, so an abandoned request stops consuming
	// the pool after at most one in-flight Analyze per worker.
	cancelLabel := "pass " + sr.Name() + " analyze"
	if jobs == 1 {
		start := time.Now()
		for i, c := range targets {
			if cerr := ctx.interrupted(cancelLabel); cerr != nil {
				errs[i] = cerr
				break
			}
			plans[i], scopes[i], hits[i], errs[i] = analyzeOne(ctx, sr, c, memo)
		}
		stats[0] = WorkerStat{Worker: 0, Targets: len(targets), Time: time.Since(start)}
	} else {
		// Dynamic work stealing over a shared index: scopes vary wildly in
		// size, so static partitioning would leave workers idle.
		var next atomic.Int64
		var wg sync.WaitGroup
		for wi := 0; wi < jobs; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				start := time.Now()
				n := 0
				for {
					i := int(next.Add(1)) - 1
					if i >= len(targets) {
						break
					}
					if cerr := ctx.interrupted(cancelLabel); cerr != nil {
						errs[i] = cerr
						break
					}
					plans[i], scopes[i], hits[i], errs[i] = analyzeOne(ctx, sr, targets[i], memo)
					n++
				}
				stats[wi] = WorkerStat{Worker: wi, Targets: n, Time: time.Since(start)}
			}(wi)
		}
		wg.Wait()
	}
	for _, h := range hits {
		if h {
			memoHits++
		}
	}

	var total Result
	for i := range targets {
		if errs[i] != nil {
			return total, jobs, stats, memoHits, errs[i]
		}
	}
	for i, c := range targets {
		c := c
		// A canceled request stops between commits too: the half-committed
		// world is only ever discarded (the request is abandoned, or the
		// degrade path recompiles on a fresh world), never served.
		if cerr := ctx.interrupted("pass " + sr.Name() + " commit"); cerr != nil {
			return total, jobs, stats, memoHits, cerr
		}
		var cres Result
		err := guard(sr.Name(), c.Name(), func() error {
			var cerr error
			cres, cerr = sr.Commit(ctx, c, plans[i])
			return cerr
		})
		total.Rewrites += cres.Rewrites
		total.Changed = total.Changed || cres.Changed
		total.Saturated = total.Saturated || cres.Saturated
		if err != nil {
			return total, jobs, stats, memoHits, err
		}
	}
	var fres Result
	err = guard(sr.Name(), "", func() error {
		var ferr error
		fres, ferr = sr.Finish(ctx)
		return ferr
	})
	total.Rewrites += fres.Rewrites
	total.Changed = total.Changed || fres.Changed
	total.Saturated = total.Saturated || fres.Saturated
	if memo != nil && err == nil {
		// Store the plans computed this run. A target whose commit (or a
		// later target's commit) touched its scope gets a fresh scope
		// pointer on the next lookup, so its entry misses and re-analyzes;
		// untouched targets hit. Storing the pre-commit pointer is exactly
		// what makes that work.
		for i, c := range targets {
			if scopes[i] != nil {
				memo[c] = &planMemo{scope: scopes[i], plan: plans[i]}
			}
		}
	}
	return total, jobs, stats, memoHits, err
}
