package driver

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/pm"
)

// unwritableCrashDir returns a CrashDir that cannot be created: a path
// whose parent is a regular file, so MkdirAll fails on every platform and
// under every umask (unlike permission tricks, which root ignores).
func unwritableCrashDir(t *testing.T) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(f, "crashes")
}

// TestBundleWriteFailureKeepsPassError: when the crash bundle cannot be
// written, the fail-fast error must still be the pass failure — attributed
// to the pass, matched by pm.FailedPass — with the write failure reported
// alongside, never instead.
func TestBundleWriteFailureKeepsPassError(t *testing.T) {
	_, err := CompileSpec(failureSrc, faultySpec, analysis.ScheduleSmart, Config{
		CrashDir: unwritableCrashDir(t),
	})
	if err == nil {
		t.Fatal("expected the compile to fail")
	}
	var bwe *BundleWriteError
	if !errors.As(err, &bwe) {
		t.Fatalf("want BundleWriteError, got %T: %v", err, err)
	}
	if pass, ok := pm.FailedPass(err); !ok || pass != "d-panic" {
		t.Fatalf("pass failure masked by bundle-write failure: FailedPass = %q/%v from %v", pass, ok, err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "d-panic") {
		t.Errorf("error does not name the failing pass: %v", msg)
	}
	if !strings.Contains(msg, "crash bundle could not be written") {
		t.Errorf("error does not report the bundle-write failure: %v", msg)
	}
}

// TestDegradeSurfacesBundleWriteFailure: graceful degradation with an
// unwritable crash dir still succeeds and reports the write failure on the
// result instead of silently dropping the bundle.
func TestDegradeSurfacesBundleWriteFailure(t *testing.T) {
	res, err := CompileSpec(failureSrc, faultySpec, analysis.ScheduleSmart, Config{
		CrashDir:      unwritableCrashDir(t),
		OnPassFailure: Degrade,
	})
	if err != nil {
		t.Fatalf("degradation failed: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked degraded")
	}
	if res.CrashBundle != "" {
		t.Errorf("CrashBundle = %q for a failed bundle write", res.CrashBundle)
	}
	if res.CrashBundleErr == "" {
		t.Error("CrashBundleErr empty: the failed bundle write was silently dropped")
	}
}
