package driver

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/backend"
	"thorin/internal/fuzzgen"
	"thorin/internal/impala"
	"thorin/internal/reduce"
	"thorin/internal/transform"
)

// effectSplitSpec is the O2 pipeline with the effect-split pass wired in
// before the final cleanup — the opt-in spec the fuzzer exercises so the
// fork/join rewiring is differentially checked against the reference.
const effectSplitSpec = "cleanup,pe,fix(cff,contify,mem2reg,inline-once),effectsplit,cleanup,closure"

// diffArms runs the reference interpreter and every compiled arm (-O0 and
// -O2, jobs 1 and 4, plus -O2 with effectsplit) on src with one argument
// and reports the first disagreement; "" means all arms agree. The error return flags inputs the
// oracle cannot judge (parse/check failure, reference out of fuel) — the
// fuzzer skips those, the crasher regression treats them as corpus rot.
func diffArms(src string, arg int64) (string, error) {
	prog, err := impala.Parse(src)
	if err != nil {
		return "", fmt.Errorf("parse: %w", err)
	}
	if err := impala.Check(prog); err != nil {
		return "", fmt.Errorf("check: %w", err)
	}
	var refOut bytes.Buffer
	in, err := impala.NewInterp(prog, &refOut, 0)
	if err != nil {
		return "", err
	}
	ref, err := in.Run(arg)
	// A reference trap on division/remainder by zero is a judgeable verdict,
	// not corpus rot: every compiled arm must trap too. Any other reference
	// failure (out of fuel, internal error) stays unjudgeable.
	refTrap := false
	if err != nil {
		if strings.Contains(err.Error(), "division by zero") ||
			strings.Contains(err.Error(), "remainder by zero") {
			refTrap = true
		} else {
			return "", fmt.Errorf("reference: %w", err)
		}
	}
	for _, arm := range []struct {
		name   string
		spec   string
		jobs   int
		target backend.Target
	}{
		{"O0/jobs=1", transform.SpecFor(transform.OptNone()), 1, backend.VM},
		{"O2/jobs=1", transform.SpecFor(transform.OptAll()), 1, backend.VM},
		{"O2/jobs=4", transform.SpecFor(transform.OptAll()), 4, backend.VM},
		{"O2+effectsplit/jobs=1", effectSplitSpec, 1, backend.VM},
		{"O2+effectsplit/jobs=4", effectSplitSpec, 4, backend.VM},
		{"O0/wasm", transform.SpecFor(transform.OptNone()), 1, backend.Wasm},
		{"O2/wasm", transform.SpecFor(transform.OptAll()), 1, backend.Wasm},
	} {
		res, err := CompileSpec(src, arm.spec, analysis.ScheduleSmart, Config{
			VerifyEach: true,
			Jobs:       arm.jobs,
			Target:     arm.target,
		})
		if err != nil {
			return fmt.Sprintf("%s: compile failed: %v", arm.name, err), nil
		}
		var out bytes.Buffer
		// The VM budget mirrors the interpreter's fuel (and the wasm
		// instance's, below): a compiled arm that spins where the
		// reference finished shows up as an ErrStepLimit finding instead
		// of hanging the run.
		var got int64
		if arm.target == backend.Wasm {
			got, err = ExecWasm(res.Wasm, &out, 500_000_000, arg)
		} else {
			got, _, err = ExecSteps(res.Program, &out, 500_000_000, arg)
		}
		if refTrap {
			// The reference trapped; the compiled arm must trap as well.
			// Partial output is not compared: the trapping division is not
			// mem-threaded, so the schedule may legally place it before or
			// after neighboring prints.
			if err == nil {
				return fmt.Sprintf("%s: result %d, but reference trapped on division by zero", arm.name, got), nil
			}
			if !strings.Contains(err.Error(), "division by zero") &&
				!strings.Contains(err.Error(), "remainder by zero") {
				return fmt.Sprintf("%s: failed with %v, but reference trapped on division by zero", arm.name, err), nil
			}
			continue
		}
		if err != nil {
			return fmt.Sprintf("%s: execution failed: %v", arm.name, err), nil
		}
		if got != ref.I {
			return fmt.Sprintf("%s: result %d, reference %d", arm.name, got, ref.I), nil
		}
		if out.String() != refOut.String() {
			return fmt.Sprintf("%s: output %q, reference %q", arm.name, out.String(), refOut.String()), nil
		}
	}
	return "", nil
}

// FuzzCompile is the differential pipeline fuzzer: fuzzgen turns the seed
// into a well-typed total program, the reference interpreter provides the
// oracle, and every compiled arm must match it. A disagreement is reported
// with a ddmin-minimized reproducer ready for testdata/crashers/.
func FuzzCompile(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed, seed%7)
	}
	f.Fuzz(func(t *testing.T, seed, arg int64) {
		arg &= 63
		src := fuzzgen.Program(seed)
		finding, err := diffArms(src, arg)
		if err != nil {
			t.Skip(err)
		}
		if finding == "" {
			return
		}
		minimized := reduce.Minimize(src, func(s string) bool {
			f2, err2 := diffArms(s, arg)
			return err2 == nil && f2 != ""
		})
		t.Fatalf("differential mismatch (seed %d, arg %d): %s\n"+
			"minimized reproducer (add to internal/driver/testdata/crashers/):\n%s",
			seed, arg, finding, minimized)
	})
}
