package driver_test

// Determinism regression test for the interning/use-list internals: the
// printed IR must be byte-identical across repeated compiles at every -jobs
// level. Repetition matters — a nondeterministic map iteration or racy
// use-list append can produce self-consistent but run-dependent gids that a
// single compile per jobs level would miss.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/driver"
	"thorin/internal/ir"
	"thorin/internal/transform"
)

// determinismCorpus returns every on-disk Impala program the repo ships:
// the examples and the crash-regression corpus.
func determinismCorpus(t *testing.T) map[string]string {
	t.Helper()
	srcs := map[string]string{}
	for _, dir := range []string{"../../examples", "testdata/crashers"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading corpus dir %s: %v", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".imp" {
				continue
			}
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			srcs[e.Name()] = string(b)
		}
	}
	if len(srcs) < 4 {
		t.Fatalf("corpus too small (%d programs) — directories moved?", len(srcs))
	}
	return srcs
}

// effectSplitDetSpec mirrors the fuzzer's opt-in effectsplit pipeline: the
// O2 spec with the effect-split pass before the final cleanup. The
// fork/join rewiring runs per scope in a deterministic order, so it must
// hold the same byte-level determinism bar as the canonical spec.
const effectSplitDetSpec = "cleanup,pe,fix(cff,contify,mem2reg,inline-once),effectsplit,cleanup,closure"

func printedIR(t *testing.T, src, spec string, jobs int, disableIncremental bool) string {
	t.Helper()
	res, err := driver.CompileSpec(src, spec,
		analysis.ScheduleSmart, driver.Config{Jobs: jobs, DisableIncremental: disableIncremental})
	if err != nil {
		t.Fatalf("jobs=%d incremental=%v: %v", jobs, !disableIncremental, err)
	}
	var buf bytes.Buffer
	ir.Print(&buf, res.World)
	return buf.String()
}

func TestDeterministicIRAcrossJobsAndRuns(t *testing.T) {
	for name, src := range determinismCorpus(t) {
		t.Run(name, func(t *testing.T) {
			for _, spec := range []string{transform.SpecFor(transform.OptAll()), effectSplitDetSpec} {
				ref := printedIR(t, src, spec, 1, false)
				if ref == "" {
					t.Fatal("empty printed IR")
				}
				for _, jobs := range []int{1, 4, 8} {
					for run := 0; run < 2; run++ {
						if got := printedIR(t, src, spec, jobs, false); got != ref {
							t.Fatalf("spec=%s jobs=%d run=%d: printed IR differs from first jobs=1 compile", spec, jobs, run)
						}
					}
					// Incremental mode may only skip provably no-op work, never
					// reorder rewrites, so turning it off must not change a byte
					// at any jobs level.
					if got := printedIR(t, src, spec, jobs, true); got != ref {
						t.Fatalf("spec=%s jobs=%d: printed IR with -incremental=off differs from incremental compile", spec, jobs)
					}
				}
			}
		})
	}
}
