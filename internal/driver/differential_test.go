package driver

import (
	"io"
	"strings"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/transform"
	"thorin/internal/vm"
)

// runVerified is Run with the pass manager's verify-each debug mode on:
// ir.Verify runs after every pass, so a pass that corrupts the IR fails the
// differential suite by name instead of as a downstream miscompile.
func runVerified(src string, opts transform.Options, out io.Writer, args ...int64) (int64, vm.Counters, error) {
	res, err := CompileSpec(src, transform.SpecFor(opts), analysis.ScheduleSmart,
		Config{VerifyEach: true})
	if err != nil {
		return 0, vm.Counters{}, err
	}
	return Exec(res.Program, out, args...)
}

// differentialPrograms exercise every language feature; all three pipelines
// (Thorin optimized, Thorin unoptimized, classical SSA baseline) must agree
// on results and printed output.
var differentialPrograms = []struct {
	name string
	src  string
	args []int64
	want int64
}{
	{"gcd", `
fn gcd(a: i64, b: i64) -> i64 { if b == 0 { a } else { gcd(b, a % b) } }
fn main(a: i64, b: i64) -> i64 { gcd(a, b) }`, []int64{1071, 462}, 21},

	{"collatz", `
fn main(n: i64) -> i64 {
	let mut steps = 0;
	let mut x = n;
	while x != 1 {
		if x % 2 == 0 { x = x / 2; } else { x = 3 * x + 1; }
		steps = steps + 1;
	}
	steps
}`, []int64{27}, 111},

	{"ackermann", `
fn ack(m: i64, n: i64) -> i64 {
	if m == 0 { n + 1 }
	else if n == 0 { ack(m - 1, 1) }
	else { ack(m - 1, ack(m, n - 1)) }
}
fn main() -> i64 { ack(2, 3) }`, nil, 9},

	{"sieve", `
fn main(n: i64) -> i64 {
	let composite = [false; n];
	let mut count = 0;
	for i in 2 .. n {
		if !composite[i] {
			count = count + 1;
			let mut j = i * i;
			while j < n {
				composite[j] = true;
				j = j + i;
			}
		}
	}
	count
}`, []int64{1000}, 168},

	{"hof-pipeline", `
fn map(a: [i64], f: fn(i64) -> i64) -> [i64] {
	let out = [0; len(a)];
	for i in 0 .. len(a) { out[i] = f(a[i]); }
	out
}
fn filter_sum(a: [i64], keep: fn(i64) -> bool) -> i64 {
	let mut s = 0;
	for i in 0 .. len(a) { if keep(a[i]) { s = s + a[i]; } }
	s
}
fn main(n: i64) -> i64 {
	let xs = [0; n];
	for i in 0 .. n { xs[i] = i; }
	filter_sum(map(xs, |x: i64| x * 3), |x: i64| x % 2 == 0)
}`, []int64{50}, 1800},

	{"curry", `
fn adder(n: i64) -> fn(i64) -> i64 { |x: i64| x + n }
fn main(a: i64, b: i64) -> i64 { adder(a)(b) + adder(b)(a) }`, []int64{3, 4}, 14},

	{"counter-cells", `
fn main() -> i64 {
	let mut c1 = 0;
	let mut c2 = 100;
	let bump1 = || { c1 = c1 + 1; };
	let bump2 = || { c2 = c2 + 10; };
	bump1(); bump2(); bump1();
	c1 * 1000 + c2
}`, nil, 2110},

	{"float-mandel-point", `
fn escapes(cr: f64, ci: f64, limit: i64) -> i64 {
	let mut zr = 0.0;
	let mut zi = 0.0;
	let mut i = 0;
	while i < limit {
		let zr2 = zr * zr - zi * zi + cr;
		let zi2 = 2.0 * zr * zi + ci;
		zr = zr2; zi = zi2;
		if zr * zr + zi * zi > 4.0 { return i; }
		i = i + 1;
	}
	limit
}
fn main() -> i64 { escapes(0.3, 0.5, 1000) + escapes(-1.0, 0.0, 50) }`, nil, 1050},

	{"tuple-swap", `
fn minmax(a: i64, b: i64) -> (i64, i64) {
	if a < b { (a, b) } else { (b, a) }
}
fn main(a: i64, b: i64) -> i64 {
	let r = minmax(a, b);
	r.0 * 1000 + r.1
}`, []int64{42, 7}, 7042},

	{"shadowing", `
fn main(n: i64) -> i64 {
	let x = n;
	let y = { let x = x * 2; x + 1 };
	x + y
}`, []int64{10}, 31},

	{"early-return", `
fn find(a: [i64], v: i64) -> i64 {
	for i in 0 .. len(a) {
		if a[i] == v { return i; }
	}
	-1
}
fn main(n: i64) -> i64 {
	let a = [0; n];
	for i in 0 .. n { a[i] = i * 7 % n; }
	find(a, 3) + find(a, -5)
}`, []int64{20}, 8}, // index 9 (9*7%20==3) plus -1 for the missing value

	{"bitops", `
fn main(n: i64) -> i64 {
	((n << 3) ^ (n >> 1)) & (n | 255)
}`, []int64{1234}, ((1234 << 3) ^ (1234 >> 1)) & (1234 | 255)},
}

func TestDifferentialPipelines(t *testing.T) {
	for _, tc := range differentialPrograms {
		t.Run(tc.name, func(t *testing.T) {
			var outOpt, outNo, outSSA strings.Builder
			gotOpt, _, err := runVerified(tc.src, transform.OptAll(), &outOpt, tc.args...)
			if err != nil {
				t.Fatalf("thorin-opt: %v", err)
			}
			gotNo, _, err := runVerified(tc.src, transform.OptNone(), &outNo, tc.args...)
			if err != nil {
				t.Fatalf("thorin-noopt: %v", err)
			}
			gotSSA, _, err := RunSSA(tc.src, &outSSA, tc.args...)
			if err != nil {
				t.Fatalf("ssa: %v", err)
			}
			if gotOpt != tc.want {
				t.Errorf("thorin-opt: got %d, want %d", gotOpt, tc.want)
			}
			if gotNo != tc.want {
				t.Errorf("thorin-noopt: got %d, want %d", gotNo, tc.want)
			}
			if gotSSA != tc.want {
				t.Errorf("ssa: got %d, want %d", gotSSA, tc.want)
			}
			if outOpt.String() != outNo.String() || outOpt.String() != outSSA.String() {
				t.Errorf("output mismatch:\nopt:  %q\nno:   %q\nssa:  %q",
					outOpt.String(), outNo.String(), outSSA.String())
			}
		})
	}
}

// TestMangledBeatsBaselineOnHOF checks the paper's headline claim on this
// substrate: with lambda mangling, higher-order code costs the same as
// first-order code, while both the unoptimized Thorin lowering and the
// classical SSA baseline pay per-call closure overhead.
func TestMangledBeatsBaselineOnHOF(t *testing.T) {
	src := `
fn fold(a: [i64], init: i64, f: fn(i64, i64) -> i64) -> i64 {
	let mut acc = init;
	for i in 0 .. len(a) { acc = f(acc, a[i]); }
	acc
}
fn main(n: i64) -> i64 {
	let xs = [0; n];
	for i in 0 .. n { xs[i] = i; }
	fold(xs, 0, |a: i64, b: i64| a + b)
}`
	const n = 10000
	_, cOpt, err := runVerified(src, transform.OptAll(), nil, n)
	if err != nil {
		t.Fatal(err)
	}
	_, cSSA, err := RunSSA(src, nil, n)
	if err != nil {
		t.Fatal(err)
	}
	if cOpt.IndirectCalls != 0 {
		t.Errorf("mangled build must have no indirect calls, got %d", cOpt.IndirectCalls)
	}
	if cSSA.IndirectCalls < n {
		t.Errorf("baseline must call the closure per element, got %d", cSSA.IndirectCalls)
	}
	if cOpt.Instructions >= cSSA.Instructions {
		t.Errorf("mangled build must execute fewer instructions: %d vs %d",
			cOpt.Instructions, cSSA.Instructions)
	}
}

func TestStaticsAndAnnotations(t *testing.T) {
	// static globals shared across functions, plus a @-annotated function
	// that the partial evaluator must force.
	src := `
static counter = 0;
static bias = -3;

@fn scale(x: i64, k: i64) -> i64 { x * k }

fn tick() -> i64 {
	counter = counter + 1;
	counter
}

fn main(n: i64) -> i64 {
	for i in 0 .. n { tick(); }
	scale(counter, 4) + bias
}`
	want := int64(4*7 - 3)
	for _, arm := range []struct {
		name string
		run  func() (int64, error)
	}{
		{"thorin-opt", func() (int64, error) { v, _, err := runVerified(src, transform.OptAll(), nil, 7); return v, err }},
		{"thorin-noopt", func() (int64, error) { v, _, err := runVerified(src, transform.OptNone(), nil, 7); return v, err }},
		{"ssa", func() (int64, error) { v, _, err := RunSSA(src, nil, 7); return v, err }},
	} {
		got, err := arm.run()
		if err != nil {
			t.Fatalf("%s: %v", arm.name, err)
		}
		if got != want {
			t.Errorf("%s: got %d, want %d", arm.name, got, want)
		}
	}
}

func TestStaticFromLambda(t *testing.T) {
	// A lambda mutating a static global (no capture needed).
	src := `
static acc = 100;
fn each(n: i64, f: fn(i64)) { for i in 0 .. n { f(i); } }
fn main(n: i64) -> i64 {
	each(n, |i: i64| { acc = acc + i; });
	acc
}`
	runBoth(t, src, 100+45, 10)
	got, _, err := RunSSA(src, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 145 {
		t.Errorf("ssa: got %d, want 145", got)
	}
}
