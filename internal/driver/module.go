package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime/debug"

	"thorin/internal/analysis"
	"thorin/internal/impala"
	"thorin/internal/ir"
	"thorin/internal/link"
	"thorin/internal/pm"
	"thorin/internal/transform"
)

// ModuleUnit is one parsed and checked module source, with its link
// surface already computed. Surfaces alone are enough to resolve imports
// and derive cache keys, so callers can decide what to recompile before
// lowering anything.
type ModuleUnit struct {
	Source string
	Prog   *impala.Program
	Info   *impala.ModuleInfo
}

// Name returns the unit's module name.
func (u *ModuleUnit) Name() string { return u.Prog.Module }

// ParseModules parses and checks each source as a module unit. Every
// source must open with a module declaration, and module names must be
// unique across the set.
func ParseModules(sources []string) ([]*ModuleUnit, error) {
	units := make([]*ModuleUnit, 0, len(sources))
	seen := map[string]bool{}
	for i, src := range sources {
		prog, err := impala.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("module source %d: %w", i+1, err)
		}
		if prog.Module == "" {
			return nil, fmt.Errorf("module source %d: missing module declaration (module NAME;)", i+1)
		}
		if err := impala.CheckModule(prog); err != nil {
			return nil, fmt.Errorf("module %q: %w", prog.Module, err)
		}
		if seen[prog.Module] {
			return nil, fmt.Errorf("module %q provided twice", prog.Module)
		}
		seen[prog.Module] = true
		info, err := impala.ModuleSurface(prog)
		if err != nil {
			return nil, fmt.Errorf("module %q: %w", prog.Module, err)
		}
		units = append(units, &ModuleUnit{Source: src, Prog: prog, Info: info})
	}
	return units, nil
}

// ModuleSpec derives the per-module pipeline from a whole-program spec:
// closure conversion is deferred to after linking, because only the linked
// world reaches codegen and late cross-module rewiring may create new
// closure work.
func ModuleSpec(spec string) string {
	next, found, err := pm.StripPass(spec, "closure")
	if err != nil || !found || next == "" {
		return spec
	}
	return next
}

// PostLinkSpec is the pipeline run on the linked world. Trampoline linking
// preserves the per-module optimization boundaries, so only the minimal
// cleanup+closure round runs; mangle linking re-runs the full spec to
// specialize across module boundaries.
func PostLinkSpec(spec string, mode link.Mode) string {
	if mode == link.Mangle {
		return spec
	}
	return fallbackSpec
}

// CompileModuleUnit lowers one module unit and runs the per-module
// pipeline over its world. Module compiles are fail-fast: graceful
// degradation would silently change the module boundary semantics, so a
// pass failure is reported instead.
func CompileModuleUnit(u *ModuleUnit, spec string, cfg Config) (*link.Module, error) {
	w, info, err := emitModule(u.Prog)
	if err != nil {
		return nil, err
	}
	if _, err := runPipeline(w, ModuleSpec(spec), cfg); err != nil {
		return nil, fmt.Errorf("module %q: %w", u.Name(), err)
	}
	return &link.Module{World: w, Info: info}, nil
}

// emitModule runs the module emitter under the same panic containment as
// compileFrontend.
func emitModule(prog *impala.Program) (w *ir.World, info *impala.ModuleInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("driver: frontend panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return impala.EmitModule(prog)
}

// runPipeline parses and runs a pass-manager spec over w under cfg.
func runPipeline(w *ir.World, spec string, cfg Config) (*pm.Context, error) {
	pl, err := pm.Parse(spec)
	if err != nil {
		return nil, err
	}
	ctx := pm.NewContext(w)
	ctx.VerifyEach = cfg.VerifyEach
	ctx.Budget = cfg.Budget
	if cfg.Jobs > 0 {
		ctx.Jobs = cfg.Jobs
	}
	if cfg.DisableIncremental {
		ctx.Incremental = false
	}
	if _, err := pl.Run(ctx); err != nil {
		return nil, err
	}
	if err := ir.Verify(w); err != nil {
		return nil, fmt.Errorf("driver: optimizer produced invalid IR: %w", err)
	}
	return ctx, nil
}

// LinkCompiled stitches per-module worlds, runs the post-link pipeline and
// the backend. spec is the whole-program spec the compilation was
// requested with (Result.Spec reports it).
func LinkCompiled(mods []*link.Module, spec string, linkMode link.Mode, mode analysis.Mode, cfg Config) (*Result, error) {
	w, err := link.Link(mods, linkMode)
	if err != nil {
		return nil, err
	}
	ctx, err := runPipeline(w, PostLinkSpec(spec, linkMode), cfg)
	if err != nil {
		return nil, err
	}
	out, target, err := compileBackend(w, mode, cfg.Target)
	if err != nil {
		return nil, err
	}
	return &Result{
		World:   w,
		Target:  target,
		Program: out.VM,
		Wasm:    out.Wasm,
		Stats:   transform.PipelineStats(ctx),
		IRStats: MeasureIR(w),
		Spec:    spec,
	}, nil
}

// CompileModules compiles a set of module sources separately, links them,
// and finishes the whole program: frontend and per-module optimization run
// once per module on that module's own world; only linking, the post-link
// pipeline and codegen see the combined program. The produced program is
// byte-identical at every jobs level and with incremental rewriting on or
// off, like CompileSpec.
func CompileModules(sources []string, spec string, mode analysis.Mode, linkMode link.Mode, cfg Config) (*Result, error) {
	units, err := ParseModules(sources)
	if err != nil {
		return nil, err
	}
	infos := make([]*impala.ModuleInfo, len(units))
	for i, u := range units {
		infos[i] = u.Info
	}
	// Resolve the import graph before compiling anything: link-time type
	// errors should not cost a single pipeline run.
	if _, err := link.ResolveImports(infos); err != nil {
		return nil, err
	}
	mods := make([]*link.Module, len(units))
	for i, u := range units {
		if mods[i], err = CompileModuleUnit(u, spec, cfg); err != nil {
			return nil, err
		}
	}
	return LinkCompiled(mods, spec, linkMode, mode, cfg)
}

// ModuleArtifact is the cached product of one module compilation: the
// optimized module world in textual IR form (imports still unresolved
// stubs) plus its link surface. Unlike a whole-program Artifact it holds
// no bytecode — codegen runs after linking — and is therefore independent
// of the schedule mode. Encoding is deterministic for the same reasons as
// Artifact.Encode.
type ModuleArtifact struct {
	// Version is the producing compiler's driver.Version; decode rejects
	// any other (textual IR and surface encodings track the compiler).
	Version string `json:"version"`
	// Spec is the per-module pipeline spec the world was optimized with.
	Spec string `json:"spec"`
	// Info is the module's link surface.
	Info *impala.ModuleInfo `json:"info"`
	// IR is the optimized module world, printed (ir.Print format).
	IR string `json:"ir"`
}

// NewModuleArtifact packages one compiled module for caching.
func NewModuleArtifact(m *link.Module, spec string) *ModuleArtifact {
	return &ModuleArtifact{
		Version: Version,
		Spec:    spec,
		Info:    m.Info,
		IR:      ir.DumpString(m.World),
	}
}

// Encode serializes the module artifact deterministically.
func (a *ModuleArtifact) Encode() ([]byte, error) {
	if a.Info == nil || a.IR == "" {
		return nil, fmt.Errorf("driver: module artifact is incomplete")
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(a); err != nil {
		return nil, fmt.Errorf("driver: encode module artifact: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeModuleArtifact parses an encoded module artifact, validating
// version and completeness (a whole-program Artifact, which has a program
// but no IR text or surface, is rejected here and vice versa).
func DecodeModuleArtifact(data []byte) (*ModuleArtifact, error) {
	var a ModuleArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("driver: decode module artifact: %w", err)
	}
	if a.Version != Version {
		return nil, fmt.Errorf("driver: module artifact version %q does not match compiler %q", a.Version, Version)
	}
	if a.Info == nil || a.Info.Name == "" || a.IR == "" {
		return nil, fmt.Errorf("driver: module artifact is incomplete")
	}
	return &a, nil
}

// Module reconstructs the linker input from the artifact by parsing the
// printed world. Round-tripping through the printed form is also how the
// compile server normalizes freshly compiled modules, so cold and warm
// cache paths link bit-identical inputs.
func (a *ModuleArtifact) Module() (*link.Module, error) {
	w, err := ir.ParseWorld(a.IR)
	if err != nil {
		return nil, fmt.Errorf("driver: module artifact %q: %w", a.Info.Name, err)
	}
	return &link.Module{World: w, Info: a.Info}, nil
}
