package driver

import (
	"strings"
	"testing"

	"thorin/internal/fuzzgen"
	"thorin/internal/impala"
	"thorin/internal/transform"
)

// TestFuzzDifferential generates random programs (internal/fuzzgen) and
// checks that the reference interpreter, both Thorin pipelines and the SSA
// baseline agree. FuzzCompile is the open-ended variant of this test.
func TestFuzzDifferential(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		src := fuzzgen.Program(int64(seed))
		prog, err := impala.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if err := impala.Check(prog); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}

		arg := int64(seed%13 - 6)
		in, err := impala.NewInterp(prog, nil, 0)
		if err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
		}
		ref, err := in.Run(arg)
		refTrap := err != nil && strings.Contains(err.Error(), "by zero")
		if err != nil && !refTrap {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
		}

		for _, arm := range []struct {
			name string
			run  func() (int64, error)
		}{
			{"thorin-opt", func() (int64, error) {
				v, _, err := Run(src, transform.OptAll(), nil, arg)
				return v, err
			}},
			{"thorin-noopt", func() (int64, error) {
				v, _, err := Run(src, transform.OptNone(), nil, arg)
				return v, err
			}},
			{"ssa", func() (int64, error) {
				v, _, err := RunSSA(src, nil, arg)
				return v, err
			}},
		} {
			got, err := arm.run()
			if refTrap {
				// The reference trapped on division by zero; every arm
				// must trap too.
				if err == nil || !strings.Contains(err.Error(), "by zero") {
					t.Fatalf("seed %d %s: got (%d, %v), reference trapped on division by zero\n%s",
						seed, arm.name, got, err, src)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, arm.name, err, src)
			}
			if got != ref.I {
				t.Fatalf("seed %d %s: got %d, reference interpreter says %d\n%s",
					seed, arm.name, got, ref.I, src)
			}
		}
	}
}
