package driver

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"thorin/internal/analysis"
	"thorin/internal/impala"
	"thorin/internal/ir"
	"thorin/internal/pm"
)

// A crash bundle is a self-contained reproduction of one pass failure:
//
//	<dir>/crash-<hash>/
//	  repro.json    pipeline spec, jobs level, budget, failing pass, error
//	  input.imp     the Impala source that was being compiled
//	  input.thorin  frontend IR before the pipeline ran (best effort)
//
// The hash covers source and spec, so recompiling the same broken input
// overwrites its bundle instead of accumulating duplicates.

// BundledError is a fail-fast pass failure that left a crash bundle on
// disk. It wraps the underlying pipeline error (so pm.FailedPass and
// errors.Is/As still see it) and carries the bundle directory structurally,
// so consumers like the compile server can report the path without parsing
// the rendered message.
type BundledError struct {
	Err    error
	Bundle string
}

func (e *BundledError) Error() string {
	return fmt.Sprintf("%v (crash bundle: %s)", e.Err, e.Bundle)
}

func (e *BundledError) Unwrap() error { return e.Err }

// BundleWriteError is a fail-fast pass failure whose crash bundle could
// not be written (read-only crash dir, full disk). The original pass
// failure stays first-class — it wraps Err so pm.FailedPass and
// errors.Is/As keep working — and the write failure rides along instead of
// masking it.
type BundleWriteError struct {
	// Err is the pass failure the bundle was meant to record.
	Err error
	// WriteErr is why the bundle could not be written.
	WriteErr error
}

func (e *BundleWriteError) Error() string {
	return fmt.Sprintf("%v (crash bundle could not be written: %v)", e.Err, e.WriteErr)
}

func (e *BundleWriteError) Unwrap() error { return e.Err }

// CrashBundle returns the replayable crash-bundle path recorded in err's
// chain, if any.
func CrashBundle(err error) (string, bool) {
	var be *BundledError
	if errors.As(err, &be) {
		return be.Bundle, true
	}
	return "", false
}

// crashManifest is the serialized form of repro.json.
type crashManifest struct {
	Spec             string `json:"spec"`
	Jobs             int    `json:"jobs"`
	VerifyEach       bool   `json:"verify_each,omitempty"`
	MaxFixpointIters int    `json:"max_fixpoint_iters,omitempty"`
	MaxNodes         int    `json:"max_nodes,omitempty"`
	Pass             string `json:"pass"`
	Error            string `json:"error"`
}

// WriteCrashBundle writes a reproduction bundle for a pass failure and
// returns the bundle directory.
func WriteCrashBundle(dir, src, spec string, cfg Config, pass string, failure error) (string, error) {
	sum := sha256.Sum256([]byte(src + "\x00" + spec))
	bundle := filepath.Join(dir, fmt.Sprintf("crash-%x", sum[:6]))
	if err := os.MkdirAll(bundle, 0o755); err != nil {
		return "", err
	}
	man := crashManifest{
		Spec:             spec,
		Jobs:             cfg.Jobs,
		VerifyEach:       cfg.VerifyEach,
		MaxFixpointIters: cfg.Budget.MaxFixpointIters,
		MaxNodes:         cfg.Budget.MaxNodes,
		Pass:             pass,
		Error:            failure.Error(),
	}
	js, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(bundle, "repro.json"), append(js, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(bundle, "input.imp"), []byte(src), 0o644); err != nil {
		return "", err
	}
	// The pre-pipeline IR dump is diagnostic sugar, not replay input; skip
	// it silently if the frontend itself misbehaves here.
	if w, err := impala.Compile(src); err == nil {
		var buf bytes.Buffer
		ir.Print(&buf, w)
		if err := os.WriteFile(filepath.Join(bundle, "input.thorin"), buf.Bytes(), 0o644); err != nil {
			return "", err
		}
	}
	return bundle, nil
}

// Replay re-runs the compilation recorded in a crash bundle with the same
// spec, jobs level and budget, failing fast. The expected outcome is the
// original error; a nil error means the bug no longer reproduces.
func Replay(bundle string) (*Result, error) {
	js, err := os.ReadFile(filepath.Join(bundle, "repro.json"))
	if err != nil {
		return nil, fmt.Errorf("driver: replay: %w", err)
	}
	var man crashManifest
	if err := json.Unmarshal(js, &man); err != nil {
		return nil, fmt.Errorf("driver: replay: bad repro.json: %w", err)
	}
	src, err := os.ReadFile(filepath.Join(bundle, "input.imp"))
	if err != nil {
		return nil, fmt.Errorf("driver: replay: %w", err)
	}
	cfg := Config{
		VerifyEach: man.VerifyEach,
		Jobs:       man.Jobs,
		Budget: pm.Budget{
			MaxFixpointIters: man.MaxFixpointIters,
			MaxNodes:         man.MaxNodes,
		},
		// Replay diagnoses the recorded failure: fail fast, and do not
		// write a second bundle for the same crash.
		OnPassFailure: FailFast,
	}
	return CompileSpec(string(src), man.Spec, analysis.ScheduleSmart, cfg)
}
