package driver

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/impala"
	"thorin/internal/pm"
)

// faultyPass panics on every run; it stands in for a buggy optimizer pass
// in the failure-policy tests.
type faultyPass struct{}

func (faultyPass) Name() string { return "d-panic" }
func (faultyPass) Run(*pm.Context) (pm.Result, error) {
	panic("driver test pass exploding")
}

func init() { pm.Register(faultyPass{}) }

const failureSrc = `
fn main(n: i64) -> i64 {
	let mut acc = 0;
	for i in 0 .. 10 { acc = acc + i * n; }
	acc
}
`

const faultySpec = "cleanup,pe,d-panic,cleanup,closure"

// TestFailFastWritesBundleAndReplays: the default policy surfaces a named
// pass-panic error, leaves a reproduction bundle, and -replay on that
// bundle reproduces the identical failure.
func TestFailFastWritesBundleAndReplays(t *testing.T) {
	dir := t.TempDir()
	_, err := CompileSpec(failureSrc, faultySpec, analysis.ScheduleSmart, Config{
		VerifyEach: true,
		CrashDir:   dir,
	})
	if err == nil {
		t.Fatal("expected the compile to fail")
	}
	var pp *pm.PassPanicError
	if !errors.As(err, &pp) || pp.Pass != "d-panic" {
		t.Fatalf("want PassPanicError for d-panic, got %v", err)
	}
	if !strings.Contains(err.Error(), `pm: pass "d-panic" panicked`) {
		t.Errorf("error does not name the pass: %v", err)
	}
	if !strings.Contains(err.Error(), "crash bundle: ") {
		t.Fatalf("error does not reference the bundle: %v", err)
	}
	bundle, ok := CrashBundle(err)
	if !ok || bundle == "" {
		t.Fatalf("no structural bundle path on the error: %v", err)
	}
	for _, f := range []string{"repro.json", "input.imp", "input.thorin"} {
		if _, serr := os.Stat(filepath.Join(bundle, f)); serr != nil {
			t.Errorf("bundle missing %s: %v", f, serr)
		}
	}
	if got, _ := os.ReadFile(filepath.Join(bundle, "input.imp")); string(got) != failureSrc {
		t.Error("bundle input.imp does not match the compiled source")
	}
	// The replay must reproduce the same failure, attributed to the same
	// pass, without writing a second bundle.
	_, rerr := Replay(bundle)
	if rerr == nil {
		t.Fatal("replay unexpectedly succeeded")
	}
	if pass, ok := pm.FailedPass(rerr); !ok || pass != "d-panic" {
		t.Fatalf("replay failure not attributed to d-panic: %v", rerr)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("crash dir has %d bundles, want 1", len(entries))
	}
}

// TestDegradeProducesCorrectProgram: with OnPassFailure=Degrade the compile
// survives the faulting pass and the degraded program still computes what
// the reference interpreter computes — at jobs 1 and jobs 8.
func TestDegradeProducesCorrectProgram(t *testing.T) {
	prog, err := impala.Parse(failureSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := impala.Check(prog); err != nil {
		t.Fatal(err)
	}
	in, err := impala.NewInterp(prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := in.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.I
	for _, jobs := range []int{1, 8} {
		res, err := CompileSpec(failureSrc, faultySpec, analysis.ScheduleSmart, Config{
			VerifyEach:    true,
			Jobs:          jobs,
			OnPassFailure: Degrade,
		})
		if err != nil {
			t.Fatalf("jobs=%d: degradation failed: %v", jobs, err)
		}
		if !res.Degraded {
			t.Fatalf("jobs=%d: result not marked degraded", jobs)
		}
		if len(res.FailedPasses) != 1 || res.FailedPasses[0] != "d-panic" {
			t.Errorf("jobs=%d: FailedPasses = %v, want [d-panic]", jobs, res.FailedPasses)
		}
		if strings.Contains(res.Spec, "d-panic") {
			t.Errorf("jobs=%d: degraded spec %q still contains the faulting pass", jobs, res.Spec)
		}
		got, _, err := Exec(res.Program, nil, 7)
		if err != nil {
			t.Fatalf("jobs=%d: degraded program failed to run: %v", jobs, err)
		}
		if got != want {
			t.Errorf("jobs=%d: degraded program computed %d, interpreter %d", jobs, got, want)
		}
	}
}

// TestDegradeKeepsHealthyPipelinesUntouched: a pipeline that does not fail
// must come back without the Degraded marker regardless of policy.
func TestDegradeKeepsHealthyPipelinesUntouched(t *testing.T) {
	res, err := CompileSpec(failureSrc, "cleanup,pe,cleanup,closure", analysis.ScheduleSmart, Config{
		OnPassFailure: Degrade,
		CrashDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.CrashBundle != "" || len(res.FailedPasses) != 0 {
		t.Errorf("healthy compile marked degraded: %+v", res)
	}
}
