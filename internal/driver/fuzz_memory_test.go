package driver

import (
	"testing"

	"thorin/internal/fuzzgen"
)

// TestFuzzMemory sweeps the memory-heavy generator mode through every
// compiled arm: slots written in loops, aliased array cells, repeated
// stores to the same cell, and lambda-captured mutables whose slots
// escape — the corpus that exercises alias regions, the effect-split
// rewiring, region-pure load hoisting and dead-store elimination. Every
// seed must agree with the reference interpreter.
func TestFuzzMemory(t *testing.T) {
	seeds := 250
	if testing.Short() {
		seeds = 40
	}
	for seed := 0; seed < seeds; seed++ {
		src := fuzzgen.MemoryProgram(int64(seed))
		arg := int64(seed%15 - 7)
		finding, err := diffArms(src, arg)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if finding != "" {
			t.Fatalf("seed %d (arg %d): %s\n%s", seed, arg, finding, src)
		}
	}
}
