package driver_test

// End-to-end checks of the incremental rewrite machinery over the real
// pipeline: incremental compiles must skip provably no-op pass runs (that is
// the point of the journal) while producing byte-identical IR — the
// byte-identity half lives in determinism_test.go.

import (
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/driver"
	"thorin/internal/transform"
)

func TestIncrementalCompileSkipsNoopRuns(t *testing.T) {
	spec := transform.SpecFor(transform.OptAll())
	totalSkips := 0
	for name, src := range determinismCorpus(t) {
		res, err := driver.CompileSpec(src, spec, analysis.ScheduleSmart, driver.Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, run := range res.Report.Runs {
			if run.Skipped && (run.Rewrites != 0 || run.Changed || run.Err != "") {
				t.Fatalf("%s: skipped run %s reports work: %+v", name, run.Label(), run)
			}
		}
		totalSkips += res.Report.Skips()

		off, err := driver.CompileSpec(src, spec, analysis.ScheduleSmart,
			driver.Config{DisableIncremental: true})
		if err != nil {
			t.Fatalf("%s (incremental off): %v", name, err)
		}
		if n := off.Report.Skips(); n != 0 {
			t.Fatalf("%s: %d skipped runs with incremental disabled", name, n)
		}
	}
	// At least one program in the corpus must exercise a multi-iteration
	// fixpoint whose confirming iteration gets skipped — otherwise the
	// incremental machinery is dead code on the shipped corpus.
	if totalSkips == 0 {
		t.Fatal("no pass run was ever skipped across the corpus")
	}
}
