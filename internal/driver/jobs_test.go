package driver_test

// Parallel-determinism tests: compiling with the parallel scope scheduler
// must be bit-for-bit identical to the sequential compile — same printed IR
// (hence same gids, same canonical operand orders), same bytecode behavior,
// same VM counters — at every jobs level. This is the contract that makes
// -jobs safe to default on.

import (
	"bytes"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/bench"
	"thorin/internal/driver"
	"thorin/internal/ir"
	"thorin/internal/transform"
	"thorin/internal/vm"
)

// jobsN mirrors the small sizes of the equivalence sweep.
var jobsN = map[string]int64{
	"fib": 15, "mapreduce": 400, "filter": 400, "compose": 400,
	"mandelbrot": 8, "nbody": 40, "spectralnorm": 8, "qsort": 250,
	"matmul": 6, "nqueens": 5,
}

type jobsArm struct {
	irText   string
	value    int64
	output   string
	counters vm.Counters
}

func compileAt(t *testing.T, src, spec string, jobs int, n int64) jobsArm {
	t.Helper()
	res, err := driver.CompileSpec(src, spec, analysis.ScheduleSmart,
		driver.Config{Jobs: jobs, VerifyEach: true})
	if err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	var irBuf, outBuf bytes.Buffer
	ir.Print(&irBuf, res.World)
	m := vm.New(res.Program, &outBuf)
	m.MaxSteps = 4_000_000_000
	vals, err := m.Run(vm.Value{I: n})
	if err != nil {
		t.Fatalf("jobs=%d: vm: %v", jobs, err)
	}
	var v int64
	if len(vals) > 0 {
		v = vals[0].I
	}
	return jobsArm{irText: irBuf.String(), value: v, output: outBuf.String(), counters: m.Counters}
}

func TestParallelJobsIdentical(t *testing.T) {
	spec := transform.SpecFor(transform.OptAll())
	for _, prog := range bench.Suite {
		n := jobsN[prog.Name]
		if n == 0 {
			n = 10
		}
		for _, variant := range []struct{ name, src string }{
			{"functional", prog.Functional},
			{"imperative", prog.Imperative},
		} {
			t.Run(prog.Name+"/"+variant.name, func(t *testing.T) {
				ref := compileAt(t, variant.src, spec, 1, n)
				for _, jobs := range []int{2, 8} {
					got := compileAt(t, variant.src, spec, jobs, n)
					if got.irText != ref.irText {
						t.Fatalf("jobs=%d: printed IR differs from jobs=1", jobs)
					}
					if got.value != ref.value || got.output != ref.output {
						t.Fatalf("jobs=%d: result %d/%q, want %d/%q",
							jobs, got.value, got.output, ref.value, ref.output)
					}
					if got.counters != ref.counters {
						t.Fatalf("jobs=%d: counters %+v, want %+v", jobs, got.counters, ref.counters)
					}
				}
			})
		}
	}
}

// TestParallelJobsIdenticalManyFns runs the same check on the synthetic
// many-function workload the speedup table uses, where the parallel phase
// actually has enough independent top-level scopes to matter.
func TestParallelJobsIdenticalManyFns(t *testing.T) {
	src := bench.GenManyFns(24)
	spec := transform.SpecFor(transform.Options{Mem2Reg: true})
	ref := compileAt(t, src, spec, 1, 50)
	for _, jobs := range []int{2, 4, 8} {
		got := compileAt(t, src, spec, jobs, 50)
		if got.irText != ref.irText {
			t.Fatalf("jobs=%d: printed IR differs from jobs=1", jobs)
		}
		if got.value != ref.value || got.counters != ref.counters {
			t.Fatalf("jobs=%d: execution differs from jobs=1", jobs)
		}
	}
	if ref.value == 0 {
		t.Fatal("synthetic workload returned 0; generator is broken")
	}
}
