package driver

import (
	"bytes"
	"encoding/json"
	"fmt"

	"thorin/internal/backend"
	"thorin/internal/vm"
)

// Artifact is the serialized product of one compilation: the compiled
// bytecode program plus enough provenance to trust and diagnose it. It is
// what the compile server stores in its content-addressed cache and ships
// back to clients, so encoding must be deterministic: the same Result
// always encodes to the same bytes (encoding/json writes struct fields in
// declaration order, and the program itself is byte-identical at every
// jobs level and with incremental rewriting on or off).
type Artifact struct {
	// Version is the compiler version the artifact was produced by
	// (driver.Version). Decode rejects artifacts from any other version —
	// the bytecode format is not stable across compiler changes.
	Version string `json:"version"`
	// Target names the backend the payload was compiled for ("vm" or
	// "wasm"); it decides which payload field is set.
	Target string `json:"target"`
	// Spec is the resolved pipeline spec the program was compiled with.
	Spec string `json:"spec"`
	// Schedule is the canonical primop schedule name ("early", "late",
	// "smart").
	Schedule string `json:"schedule"`
	// Degraded and FailedPasses record graceful degradation, mirroring
	// Result. Degraded artifacts are valid programs but are never cached:
	// they are not the program the requested spec denotes.
	Degraded     bool     `json:"degraded,omitempty"`
	FailedPasses []string `json:"failed_passes,omitempty"`
	// IRStats summarizes the optimized IR the program was emitted from.
	IRStats IRStats `json:"ir_stats"`
	// Program is the compiled bytecode (Target "vm").
	Program *vm.Program `json:"program,omitempty"`
	// Wasm is the encoded wasm module (Target "wasm").
	Wasm []byte `json:"wasm,omitempty"`
}

// NewArtifact packages a compilation result for transport and caching.
func NewArtifact(res *Result, spec, schedule string) *Artifact {
	return &Artifact{
		Version:      Version,
		Target:       string(res.Target),
		Spec:         spec,
		Schedule:     schedule,
		Degraded:     res.Degraded,
		FailedPasses: res.FailedPasses,
		IRStats:      res.IRStats,
		Program:      res.Program,
		Wasm:         res.Wasm,
	}
}

// checkPayload validates that exactly the payload matching the target is
// present: a vm artifact carries a program, a wasm artifact a module, and
// never both.
func (a *Artifact) checkPayload() error {
	switch backend.Target(a.Target) {
	case backend.VM:
		if a.Program == nil {
			return fmt.Errorf("driver: vm artifact has no program")
		}
		if a.Wasm != nil {
			return fmt.Errorf("driver: vm artifact carries a wasm payload")
		}
	case backend.Wasm:
		if len(a.Wasm) == 0 {
			return fmt.Errorf("driver: wasm artifact has no module")
		}
		if a.Program != nil {
			return fmt.Errorf("driver: wasm artifact carries a vm program")
		}
	default:
		return fmt.Errorf("driver: artifact has unknown target %q", a.Target)
	}
	return nil
}

// Encode serializes the artifact. The encoding is deterministic, so two
// compilations of the same (source, spec, schedule, target) produce
// byte-identical artifacts regardless of jobs level or incremental mode.
func (a *Artifact) Encode() ([]byte, error) {
	if err := a.checkPayload(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(a); err != nil {
		return nil, fmt.Errorf("driver: encode artifact: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeArtifact parses an encoded artifact and validates its provenance:
// a missing or mismatched payload or a version mismatch is an error,
// because a payload from a different compiler build (or for a different
// target) must never be executed as if current.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("driver: decode artifact: %w", err)
	}
	if a.Version != Version {
		return nil, fmt.Errorf("driver: artifact version %q does not match compiler %q", a.Version, Version)
	}
	if err := a.checkPayload(); err != nil {
		return nil, err
	}
	return &a, nil
}
