package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/link"
	"thorin/internal/transform"
)

// vmGoldenFile pins the SHA-256 of the VM program emitted for every example
// and crasher-corpus program at -O0 and -O2. The hashes were generated
// before codegen was split into the backend-neutral lower layer and the
// per-target emitters, so a passing run proves the refactored VM backend is
// byte-identical to the pre-refactor codegen on the whole corpus.
// Regenerate (only when bytecode output is intentionally changed) with:
//
//	THORIN_UPDATE_GOLDEN=1 go test -run TestVMGoldenArtifacts ./internal/driver
const vmGoldenFile = "testdata/vm_golden.json"

// vmGoldenPrograms enumerates the corpus: examples, the linked module
// example in both link modes, and every minimized crasher.
func vmGoldenPrograms(t *testing.T) map[string]func(spec string) ([]byte, error) {
	t.Helper()
	progs := map[string]func(spec string) ([]byte, error){}

	single := func(path string) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		progs[filepath.Base(path)] = func(spec string) ([]byte, error) {
			res, err := CompileSpec(string(src), spec, analysis.ScheduleSmart, Config{Jobs: 1})
			if err != nil {
				return nil, err
			}
			return json.Marshal(res.Program)
		}
	}
	single("../../examples/fib.imp")
	single("../../examples/mapreduce.imp")

	crashers, err := filepath.Glob("testdata/crashers/*.imp")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range crashers {
		single(path)
	}

	var modSrcs []string
	for _, name := range []string{"a.imp", "b.imp", "c.imp"} {
		src, err := os.ReadFile(filepath.Join("../../examples/modules", name))
		if err != nil {
			t.Fatal(err)
		}
		modSrcs = append(modSrcs, string(src))
	}
	for _, lm := range []link.Mode{link.Trampoline, link.Mangle} {
		lm := lm
		progs["modules/"+string(lm)] = func(spec string) ([]byte, error) {
			res, err := CompileModules(modSrcs, spec, analysis.ScheduleSmart, lm, Config{Jobs: 1})
			if err != nil {
				return nil, err
			}
			return json.Marshal(res.Program)
		}
	}
	return progs
}

func TestVMGoldenArtifacts(t *testing.T) {
	specs := map[string]string{
		"O0": transform.SpecFor(transform.OptNone()),
		"O2": transform.SpecFor(transform.OptAll()),
	}
	got := map[string]string{}
	for name, compile := range vmGoldenPrograms(t) {
		for level, spec := range specs {
			data, err := compile(spec)
			if err != nil {
				t.Fatalf("%s at %s: %v", name, level, err)
			}
			sum := sha256.Sum256(data)
			got[name+"@"+level] = hex.EncodeToString(sum[:])
		}
	}

	if os.Getenv("THORIN_UPDATE_GOLDEN") != "" {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteString("{\n")
		for i, k := range keys {
			sep := ","
			if i == len(keys)-1 {
				sep = ""
			}
			fmt.Fprintf(&sb, "\t%q: %q%s\n", k, got[k], sep)
		}
		sb.WriteString("}\n")
		if err := os.WriteFile(vmGoldenFile, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", vmGoldenFile, len(got))
		return
	}

	data, err := os.ReadFile(vmGoldenFile)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with THORIN_UPDATE_GOLDEN=1): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, corpus produced %d", len(want), len(got))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("%s: in golden file but not produced (corpus changed?)", k)
		} else if g != w {
			t.Errorf("%s: VM program hash %s, golden %s — bytecode output changed", k, g, w)
		}
	}
}
