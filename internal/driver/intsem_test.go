package driver

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"thorin/internal/impala"
	"thorin/internal/transform"
)

// TestFolderVMIntegerAgreement pins the folder and the VM to the same
// two's-complement integer semantics: each case is compiled twice — once
// with the operands as runtime arguments (the VM executes the op) and once
// with them inlined as literals (the folder evaluates it at compile time) —
// and both must produce the same value.
func TestFolderVMIntegerAgreement(t *testing.T) {
	tests := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"/", math.MinInt64, -1, math.MinInt64},
		{"/", math.MinInt64, 1, math.MinInt64},
		{"/", 7, -2, -3},
		{"/", -7, 2, -3},
		{"%", math.MinInt64, -1, 0},
		{"%", 7, -1, 0},
		{"%", -7, 3, -1},
		{"%", 7, 7, 0},
		{"<<", 1, 64, 1},
		{"<<", 1, 65, 2},
		{"<<", 3, 63, math.MinInt64},
		{">>", 8, 64, 8},
		{">>", -8, 1, -4},
		{"*", math.MaxInt64, 2, -2},
		{"+", math.MaxInt64, 1, math.MinInt64},
	}
	for _, tc := range tests {
		t.Run(fmt.Sprintf("%d%s%d", tc.a, tc.op, tc.b), func(t *testing.T) {
			// MinInt64 prints as a plain literal: the parser folds unary
			// minus into the magnitude, so -9223372036854775808 parses.
			lit := func(v int64) string {
				return fmt.Sprintf("(%d)", v)
			}
			runtimeSrc := fmt.Sprintf("fn main(x: i64, y: i64) -> i64 { x %s y }", tc.op)
			foldedSrc := fmt.Sprintf("fn main() -> i64 { %s %s %s }", lit(tc.a), tc.op, lit(tc.b))
			for _, opts := range []transform.Options{transform.OptNone(), transform.OptAll()} {
				got, _, err := Run(runtimeSrc, opts, nil, tc.a, tc.b)
				if err != nil {
					t.Fatalf("vm arm: %v", err)
				}
				if got != tc.want {
					t.Errorf("vm arm: got %d, want %d", got, tc.want)
				}
				got, _, err = Run(foldedSrc, opts, nil)
				if err != nil {
					t.Fatalf("folded arm: %v", err)
				}
				if got != tc.want {
					t.Errorf("folded arm: got %d, want %d", got, tc.want)
				}
			}
		})
	}
}

// TestDivisionByZeroErrors pins that runtime division/remainder by zero is a
// reported VM error, never a Go panic.
func TestDivisionByZeroErrors(t *testing.T) {
	for _, op := range []string{"/", "%"} {
		src := fmt.Sprintf("fn main(x: i64, y: i64) -> i64 { x %s y }", op)
		if _, _, err := Run(src, transform.OptNone(), nil, 1, 0); err == nil {
			t.Errorf("x %s 0 must fail at runtime", op)
		}
	}
}

// TestConstDivisionByZeroTraps pins the folder/VM/interpreter agreement on
// division by a *constant* zero: `10 / 0` used to fold to ⊥ and execute as
// 0 while `10 / n` (n=0) trapped. All three layers must now trap.
func TestConstDivisionByZeroTraps(t *testing.T) {
	for _, op := range []string{"/", "%"} {
		src := fmt.Sprintf("fn main() -> i64 { 10 %s 0 }", op)

		prog, err := impala.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := impala.Check(prog); err != nil {
			t.Fatal(err)
		}
		in, err := impala.NewInterp(prog, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.Run(); err == nil {
			t.Errorf("interp: 10 %s 0 must error", op)
		}

		for _, opts := range []transform.Options{transform.OptNone(), transform.OptAll()} {
			if got, _, err := Run(src, opts, nil); err == nil {
				t.Errorf("vm: 10 %s 0 returned %d, must trap", op, got)
			} else if !strings.Contains(err.Error(), "by zero") {
				t.Errorf("vm: 10 %s 0 failed with %v, want a division-by-zero trap", op, err)
			}
		}
	}
}

// TestMinInt64Literal pins that the most negative i64 is writable as a
// literal (the parser folds unary minus into the magnitude) and that the
// interpreter and both VM arms agree on its value and arithmetic.
func TestMinInt64Literal(t *testing.T) {
	cases := []struct {
		name, src string
		args      []int64
		want      int64
	}{
		{"literal", "fn main() -> i64 { -9223372036854775808 }", nil, math.MinInt64},
		{"arith", "fn main() -> i64 { -9223372036854775808 + 1 }", nil, math.MinInt64 + 1},
		{"div-neg-one", "fn main(n: i64) -> i64 { -9223372036854775808 / (n - 1) }", []int64{0}, math.MinInt64},
		{"cast", "fn main() -> i64 { (-9223372036854775808 as f64) as i64 }", nil, math.MinInt64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := impala.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if err := impala.Check(prog); err != nil {
				t.Fatal(err)
			}
			in, err := impala.NewInterp(prog, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := in.Run(tc.args...)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			if ref.I != tc.want {
				t.Fatalf("interp: got %d, want %d", ref.I, tc.want)
			}
			for _, opts := range []transform.Options{transform.OptNone(), transform.OptAll()} {
				got, _, err := Run(tc.src, opts, nil, tc.args...)
				if err != nil {
					t.Fatalf("vm: %v", err)
				}
				if got != tc.want {
					t.Errorf("vm: got %d, want %d", got, tc.want)
				}
			}
		})
	}
	// Magnitudes past 2^63 still fail cleanly, and the positive 2^63
	// literal (no minus to fold) stays unrepresentable.
	for _, bad := range []string{
		"fn main() -> i64 { -9223372036854775809 }",
		"fn main() -> i64 { 9223372036854775808 }",
	} {
		if _, err := impala.Parse(bad); err == nil {
			t.Errorf("parse accepted %q", bad)
		}
	}
}
