package driver

import (
	"fmt"
	"math"
	"testing"

	"thorin/internal/transform"
)

// TestFolderVMIntegerAgreement pins the folder and the VM to the same
// two's-complement integer semantics: each case is compiled twice — once
// with the operands as runtime arguments (the VM executes the op) and once
// with them inlined as literals (the folder evaluates it at compile time) —
// and both must produce the same value.
func TestFolderVMIntegerAgreement(t *testing.T) {
	tests := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"/", math.MinInt64, -1, math.MinInt64},
		{"/", math.MinInt64, 1, math.MinInt64},
		{"/", 7, -2, -3},
		{"/", -7, 2, -3},
		{"%", math.MinInt64, -1, 0},
		{"%", 7, -1, 0},
		{"%", -7, 3, -1},
		{"%", 7, 7, 0},
		{"<<", 1, 64, 1},
		{"<<", 1, 65, 2},
		{"<<", 3, 63, math.MinInt64},
		{">>", 8, 64, 8},
		{">>", -8, 1, -4},
		{"*", math.MaxInt64, 2, -2},
		{"+", math.MaxInt64, 1, math.MinInt64},
	}
	for _, tc := range tests {
		t.Run(fmt.Sprintf("%d%s%d", tc.a, tc.op, tc.b), func(t *testing.T) {
			// MinInt64 cannot be written as a single literal (the frontend
			// sees unary minus applied to an overflowing magnitude).
			lit := func(v int64) string {
				if v == math.MinInt64 {
					return fmt.Sprintf("(%d - 1)", math.MinInt64+1)
				}
				return fmt.Sprintf("(%d)", v)
			}
			runtimeSrc := fmt.Sprintf("fn main(x: i64, y: i64) -> i64 { x %s y }", tc.op)
			foldedSrc := fmt.Sprintf("fn main() -> i64 { %s %s %s }", lit(tc.a), tc.op, lit(tc.b))
			for _, opts := range []transform.Options{transform.OptNone(), transform.OptAll()} {
				got, _, err := Run(runtimeSrc, opts, nil, tc.a, tc.b)
				if err != nil {
					t.Fatalf("vm arm: %v", err)
				}
				if got != tc.want {
					t.Errorf("vm arm: got %d, want %d", got, tc.want)
				}
				got, _, err = Run(foldedSrc, opts, nil)
				if err != nil {
					t.Fatalf("folded arm: %v", err)
				}
				if got != tc.want {
					t.Errorf("folded arm: got %d, want %d", got, tc.want)
				}
			}
		})
	}
}

// TestDivisionByZeroErrors pins that runtime division/remainder by zero is a
// reported VM error, never a Go panic.
func TestDivisionByZeroErrors(t *testing.T) {
	for _, op := range []string{"/", "%"} {
		src := fmt.Sprintf("fn main(x: i64, y: i64) -> i64 { x %s y }", op)
		if _, _, err := Run(src, transform.OptNone(), nil, 1, 0); err == nil {
			t.Errorf("x %s 0 must fail at runtime", op)
		}
	}
}
