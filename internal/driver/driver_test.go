package driver

import (
	"strings"
	"testing"

	"thorin/internal/analysis"
	vmbackend "thorin/internal/backend/vm"
	"thorin/internal/ir"
	"thorin/internal/transform"
)

// runBoth executes src under full optimization and no optimization and
// requires identical results.
func runBoth(t *testing.T, src string, want int64, args ...int64) {
	t.Helper()
	got, _, err := Run(src, transform.OptAll(), nil, args...)
	if err != nil {
		t.Fatalf("opt run: %v", err)
	}
	if got != want {
		t.Errorf("opt: got %d, want %d", got, want)
	}
	got, _, err = Run(src, transform.OptNone(), nil, args...)
	if err != nil {
		t.Fatalf("noopt run: %v", err)
	}
	if got != want {
		t.Errorf("noopt: got %d, want %d", got, want)
	}
}

func TestArithmetic(t *testing.T) {
	runBoth(t, `fn main() -> i64 { (3 + 4) * 5 - 100 / 4 % 7 }`, 31)
}

func TestFloatArithmetic(t *testing.T) {
	runBoth(t, `fn main() -> i64 { (1.5 * 4.0 + 0.25) as i64 }`, 6)
}

func TestConditionals(t *testing.T) {
	runBoth(t, `fn main(n: i64) -> i64 {
		if n < 0 { -n } else if n == 0 { 42 } else { n }
	}`, 17, -17)
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right of && must not execute.
	runBoth(t, `fn main(n: i64) -> i64 {
		if n != 0 && 100 / n > 5 { 1 } else { 0 }
	}`, 0, 0)
}

func TestWhileLoop(t *testing.T) {
	runBoth(t, `fn main(n: i64) -> i64 {
		let mut s = 0;
		let mut i = 0;
		while i < n { s = s + i; i = i + 1; }
		s
	}`, 4950, 100)
}

func TestForLoopBreakContinue(t *testing.T) {
	runBoth(t, `fn main() -> i64 {
		let mut s = 0;
		for i in 0 .. 100 {
			if i % 2 == 0 { continue; }
			if i > 20 { break; }
			s = s + i;
		}
		s
	}`, 1+3+5+7+9+11+13+15+17+19)
}

func TestRecursion(t *testing.T) {
	runBoth(t, `
fn fib(n: i64) -> i64 { if n < 2 { n } else { fib(n-1) + fib(n-2) } }
fn main(n: i64) -> i64 { fib(n) }`, 6765, 20)
}

func TestMutualRecursion(t *testing.T) {
	runBoth(t, `
fn is_even(n: i64) -> bool { if n == 0 { true } else { is_odd(n - 1) } }
fn is_odd(n: i64) -> bool { if n == 0 { false } else { is_even(n - 1) } }
fn main(n: i64) -> i64 { if is_even(n) { 1 } else { 0 } }`, 1, 100)
}

func TestTailRecursionDeep(t *testing.T) {
	// 1e6-deep tail recursion must not overflow (tail calls in the VM).
	runBoth(t, `
fn count(i: i64, n: i64, acc: i64) -> i64 {
	if i >= n { acc } else { count(i + 1, n, acc + i) }
}
fn main(n: i64) -> i64 { count(0, n, 0) }`, 499999500000, 1000000)
}

func TestArrays(t *testing.T) {
	runBoth(t, `fn main(n: i64) -> i64 {
		let a = [0; n];
		for i in 0 .. n { a[i] = i * i; }
		let mut s = 0;
		for i in 0 .. len(a) { s = s + a[i]; }
		s
	}`, 285, 10)
}

func TestTuples(t *testing.T) {
	runBoth(t, `
fn divmod(a: i64, b: i64) -> (i64, i64) { (a / b, a % b) }
fn main() -> i64 {
	let r = divmod(17, 5);
	r.0 * 100 + r.1
}`, 302)
}

func TestHigherOrderKnown(t *testing.T) {
	runBoth(t, `
fn apply(f: fn(i64) -> i64, x: i64) -> i64 { f(x) }
fn main(n: i64) -> i64 { apply(|v: i64| v * v, n) }`, 144, 12)
}

func TestClosureCapture(t *testing.T) {
	runBoth(t, `
fn make_adder_result(n: i64, x: i64) -> i64 {
	let add = |y: i64| y + n;
	add(x) + add(0)
}
fn main() -> i64 { make_adder_result(10, 5) }`, 25)
}

func TestClosureCapturesMutableCell(t *testing.T) {
	runBoth(t, `
fn main() -> i64 {
	let mut total = 0;
	let bump = |v: i64| { total = total + v; };
	bump(3);
	bump(4);
	total
}`, 7)
}

func TestFunctionAsValue(t *testing.T) {
	runBoth(t, `
fn double(x: i64) -> i64 { x * 2 }
fn triple(x: i64) -> i64 { x * 3 }
fn pick(which: bool) -> fn(i64) -> i64 {
	if which { double } else { triple }
}
fn main(n: i64) -> i64 { pick(n > 0)(10) + pick(n < 0)(10) }`, 50, 1)
}

func TestMapReducePipeline(t *testing.T) {
	src := `
fn map(a: [i64], f: fn(i64) -> i64) -> [i64] {
	let out = [0; len(a)];
	for i in 0 .. len(a) { out[i] = f(a[i]); }
	out
}
fn fold(a: [i64], init: i64, f: fn(i64, i64) -> i64) -> i64 {
	let mut acc = init;
	for i in 0 .. len(a) { acc = f(acc, a[i]); }
	acc
}
fn main(n: i64) -> i64 {
	let xs = [0; n];
	for i in 0 .. n { xs[i] = i; }
	fold(map(xs, |x: i64| x * x), 0, |a: i64, b: i64| a + b)
}`
	runBoth(t, src, 285, 10)

	// The optimized build must eliminate every closure; the unoptimized
	// build must pay for them on every element.
	_, cOpt, err := Run(src, transform.OptAll(), nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	_, cNo, err := Run(src, transform.OptNone(), nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cOpt.IndirectCalls != 0 || cOpt.ClosureAllocs != 0 {
		t.Errorf("optimized: want zero closure overhead, got %+v", cOpt)
	}
	if cNo.IndirectCalls < 2000 {
		t.Errorf("unoptimized: expected >=2000 indirect calls, got %d", cNo.IndirectCalls)
	}
	if cOpt.Instructions >= cNo.Instructions {
		t.Errorf("optimized build must execute fewer instructions (%d vs %d)",
			cOpt.Instructions, cNo.Instructions)
	}
}

func TestComposedClosures(t *testing.T) {
	runBoth(t, `
fn compose(f: fn(i64) -> i64, g: fn(i64) -> i64) -> fn(i64) -> i64 {
	|x: i64| f(g(x))
}
fn main(n: i64) -> i64 {
	let h = compose(|x: i64| x + 1, |x: i64| x * 2);
	h(n)
}`, 21, 10)
}

func TestPrintOutput(t *testing.T) {
	var sb strings.Builder
	_, _, err := Run(`
fn main() -> i64 {
	print(7);
	print(2.5);
	print_char('h');
	print_char('i');
	print_char('\n');
	0
}`, transform.OptAll(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != "7\n2.5\nhi\n" {
		t.Fatalf("output %q", sb.String())
	}
}

func TestNestedLoopsMatrix(t *testing.T) {
	runBoth(t, `
fn main(n: i64) -> i64 {
	let a = [0; n * n];
	for i in 0 .. n {
		for j in 0 .. n {
			a[i * n + j] = i * j;
		}
	}
	let mut s = 0;
	for k in 0 .. n * n { s = s + a[k]; }
	s
}`, 2025, 10) // (sum 0..9)^2 = 45^2
}

func TestOptimizedIRIsCFF(t *testing.T) {
	src := `
fn apply(f: fn(i64) -> i64, x: i64) -> i64 { f(x) }
fn main(n: i64) -> i64 { apply(|v: i64| v + 1, n) }`
	res, err := Compile(src, transform.OptAll(), analysis.ScheduleSmart)
	if err != nil {
		t.Fatal(err)
	}
	if res.IRStats.HigherOrder != 0 {
		t.Errorf("optimized world must be in CFF, %d higher-order conts remain",
			res.IRStats.HigherOrder)
	}
	noopt, err := Compile(src, transform.OptNone(), analysis.ScheduleSmart)
	if err != nil {
		t.Fatal(err)
	}
	if noopt.Stats.Closure.Closures == 0 {
		t.Error("unoptimized lowering must produce closures")
	}
}

func TestMem2RegPromotesLocals(t *testing.T) {
	src := `fn main(n: i64) -> i64 {
		let mut s = 0;
		let mut i = 0;
		while i < n { s = s + i; i = i + 1; }
		s
	}`
	got, c, err := Run(src, transform.OptAll(), nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 499500 {
		t.Fatalf("got %d", got)
	}
	if c.Loads != 0 || c.Stores != 0 {
		t.Errorf("optimized loop must run without memory traffic: %+v", c)
	}
}

func TestFloatComputation(t *testing.T) {
	var sb strings.Builder
	_, _, err := Run(`
fn norm(x: f64, y: f64) -> f64 { x * x + y * y }
fn main() -> i64 {
	let mut acc = 0.0;
	for i in 0 .. 100 {
		acc = acc + norm(i as f64, 2.0);
	}
	print(acc);
	acc as i64
}`, transform.OptAll(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	// sum i^2 for i<100 = 328350, plus 100*4 = 400.
	if !strings.HasPrefix(sb.String(), "328750") {
		t.Fatalf("output %q", sb.String())
	}
}

func TestDeterministicCounters(t *testing.T) {
	src := `fn main(n: i64) -> i64 { let mut s = 0; for i in 0 .. n { s = s + i; } s }`
	_, c1, err := Run(src, transform.OptAll(), nil, 500)
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := Run(src, transform.OptAll(), nil, 500)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("counters must be deterministic:\n%+v\n%+v", c1, c2)
	}
}

func TestContificationFusesSharedReturn(t *testing.T) {
	// step is called from both branch arms; both calls return to the same
	// join point, so contification turns them into jumps — zero runtime
	// calls remain.
	src := `
fn step(x: i64) -> i64 { x * 3 + 1 }
fn main(n: i64) -> i64 {
	let r = if n % 2 == 0 { step(n) } else { step(n + 1) };
	r + 1
}`
	got, c, err := Run(src, transform.OptAll(), nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 26 { // step(8)+1 = 25+1
		t.Fatalf("got %d, want 26", got)
	}
	if c.DirectCalls+c.TailCalls != 0 {
		t.Errorf("contified program must not perform calls: %+v", c)
	}
}

func TestIRTextRoundTripExecutes(t *testing.T) {
	// Compile a program, dump the optimized IR, parse it back, compile the
	// reparsed world, and require identical behavior.
	src := `
fn fib(n: i64) -> i64 { if n < 2 { n } else { fib(n-1) + fib(n-2) } }
fn main(n: i64) -> i64 { fib(n) }`
	res, err := Compile(src, transform.OptAll(), analysis.ScheduleSmart)
	if err != nil {
		t.Fatal(err)
	}
	dump := ir.DumpString(res.World)
	w2, err := ir.ParseWorld(dump)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, dump)
	}
	if err := ir.Verify(w2); err != nil {
		t.Fatal(err)
	}
	prog2, err := vmbackend.Compile(w2, "main", vmbackend.Config{Mode: analysis.ScheduleSmart})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Exec(res.Program, nil, 17)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Exec(prog2, nil, 17)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round-tripped IR computes %d, original %d", got, want)
	}
}
