package driver

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/backend"
	"thorin/internal/transform"
	"thorin/internal/wasm"
)

// examplePaths returns every example program, including the nested
// per-example directories.
func examplePaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.imp"))
	if err != nil {
		t.Fatal(err)
	}
	nested, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "*.imp"))
	if err != nil {
		t.Fatal(err)
	}
	paths = append(paths, nested...)
	if len(paths) == 0 {
		t.Fatal("example corpus is empty")
	}
	return paths
}

// diffTargets compiles src for the vm and wasm targets with identical settings
// and checks the two executions agree on result, printed output and trap
// behavior. It returns false when the program does not compile for the vm
// (those programs are out of differential scope, e.g. deliberately broken
// inputs).
func diffTargets(t *testing.T, name, src, spec string, jobs int, args ...int64) bool {
	t.Helper()
	vmCfg := Config{Jobs: jobs}
	vmRes, err := CompileSpec(src, spec, analysis.ScheduleSmart, vmCfg)
	if err != nil {
		return false
	}
	wCfg := Config{Jobs: jobs, Target: backend.Wasm}
	wRes, err := CompileSpec(src, spec, analysis.ScheduleSmart, wCfg)
	if err != nil {
		t.Errorf("%s: compiles for vm but not wasm: %v", name, err)
		return true
	}
	var vout, wout bytes.Buffer
	vret, _, verr := Exec(vmRes.Program, &vout, args...)
	wret, werr := ExecWasm(wRes.Wasm, &wout, 0, args...)
	if (verr == nil) != (werr == nil) {
		t.Errorf("%s: trap disagreement: vm=%v wasm=%v", name, verr, werr)
		return true
	}
	if verr == nil && vret != wret {
		t.Errorf("%s: result disagreement: vm=%d wasm=%d", name, vret, wret)
	}
	if vout.String() != wout.String() {
		t.Errorf("%s: output disagreement:\nvm:\n%s\nwasm:\n%s", name, vout.String(), wout.String())
	}
	return true
}

// TestWasmDifferentialExamples is the wasm backend's acceptance gate over
// the example corpus: every example must produce the same result, output
// and trap behavior on both backends, unoptimized and fully optimized, and
// at both ends of the jobs range (codegen input must not depend on
// parallelism). The crasher corpus gets the same treatment with varied
// arguments in TestCrashers (fuzz_compile_test.go's diffArms).
func TestWasmDifferentialExamples(t *testing.T) {
	specs := map[string]string{
		"O0": transform.SpecFor(transform.OptNone()),
		"O2": transform.SpecFor(transform.OptAll()),
	}
	for _, p := range examplePaths(t) {
		srcBytes, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		src := string(srcBytes)
		compiled := false
		for sname, spec := range specs {
			for _, jobs := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/jobs=%d", filepath.Base(p), sname, jobs)
				if diffTargets(t, name, src, spec, jobs) {
					compiled = true
				}
			}
		}
		if !compiled {
			t.Logf("%s: does not compile for the vm; skipped", p)
		}
	}
}

// wasmRegressions are programs that once broke the wasm emitter; each is a
// minimized reproducer kept as a differential regression. The first three
// pinned the local-typing bug where an f64 load's local was declared i64
// (an effect primop is typed (mem, T) but its local holds only T).
var wasmRegressions = []struct {
	name string
	src  string
	args []int64
}{
	{"f64-load-local", `
fn main(n: i64) -> i64 {
	let mut chk = 0.0;
	for i in 0 .. n { chk = chk + 0.5; }
	(chk * 2.0) as i64
}`, []int64{0, 7}},

	{"f64-capture", `
fn apply(n: i64, f: fn(i64)) { for i in 0 .. n { f(i); } }
fn main(n: i64) -> i64 {
	let a = [0.0; 5];
	let dt = 0.5;
	apply(n, |i: i64| { a[i % 5] = a[i % 5] + dt; });
	(a[0] * 10.0) as i64
}`, []int64{0, 11}},

	{"f64-pair-closure", `
fn for_pairs(n: i64, f: fn(i64, i64)) {
	for i in 0 .. n { for j in i + 1 .. n { f(i, j); } }
}
fn main(n: i64) -> i64 {
	let v = [0.0; 5];
	for_pairs(n, |i: i64, j: i64| { v[i % 5] = v[j % 5] + 1.5; });
	(v[0] + v[1]) as i64
}`, []int64{0, 4}},
}

// TestWasmRegressions replays the minimized wasm-emitter reproducers
// differentially at both opt levels.
func TestWasmRegressions(t *testing.T) {
	for _, tc := range wasmRegressions {
		for sname, spec := range map[string]string{
			"O0": transform.SpecFor(transform.OptNone()),
			"O2": transform.SpecFor(transform.OptAll()),
		} {
			for _, arg := range tc.args {
				name := fmt.Sprintf("%s/%s/n=%d", tc.name, sname, arg)
				if !diffTargets(t, name, tc.src, spec, 1, arg) {
					t.Errorf("%s: does not compile for the vm", name)
				}
			}
		}
	}
}

// TestWasmModulesValidate re-validates every module the backend emits for
// the example corpus with the in-repo validator. CompileModule already
// validates internally, so this pins the contract from the outside: an
// artifact's wasm payload is always a well-formed, type-correct module.
func TestWasmModulesValidate(t *testing.T) {
	for _, p := range examplePaths(t) {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range []string{
			transform.SpecFor(transform.OptNone()),
			transform.SpecFor(transform.OptAll()),
		} {
			res, err := CompileSpec(string(src), spec, analysis.ScheduleSmart, Config{Target: backend.Wasm})
			if err != nil {
				continue // vm-side compile failures are covered above
			}
			m, err := wasm.Decode(res.Wasm)
			if err != nil {
				t.Errorf("%s: emitted module does not decode: %v", p, err)
				continue
			}
			if err := wasm.Validate(m); err != nil {
				t.Errorf("%s: emitted module does not validate: %v", p, err)
			}
		}
	}
}

// TestWasmLinkedModules: separate compilation works for the wasm target —
// a multi-module program links and runs identically on both backends under
// both cross-module resolution modes. Covers a synthetic two-module set and
// the shipped examples/modules three-module chain.
func TestWasmLinkedModules(t *testing.T) {
	sources := []string{
		`module mathutil;
export fn square(x: i64) -> i64 { x * x }
export fn cube(x: i64) -> i64 { x * square(x) }
`,
		`module app;
import fn square(i64) -> i64 from mathutil;
import fn cube(i64) -> i64 from mathutil;
fn main(n: i64) -> i64 { square(n) + cube(n) }
`,
	}
	checkLinked(t, "synthetic", sources)

	var exampleSet []string
	for _, f := range []string{"a.imp", "b.imp", "c.imp"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "examples", "modules", f))
		if err != nil {
			t.Fatal(err)
		}
		exampleSet = append(exampleSet, string(src))
	}
	checkLinked(t, "examples/modules", exampleSet)
}

func checkLinked(t *testing.T, name string, sources []string) {
	t.Helper()
	spec := transform.SpecFor(transform.OptAll())
	for _, lm := range []string{"trampoline", "mangle"} {
		req := &Request{Sources: sources, Link: lm}
		linkMode, err := req.ResolvedLinkMode()
		if err != nil {
			t.Fatal(err)
		}
		vmRes, err := CompileModules(sources, spec, analysis.ScheduleSmart, linkMode, Config{})
		if err != nil {
			t.Fatalf("%s/%s: vm link: %v", name, lm, err)
		}
		wRes, err := CompileModules(sources, spec, analysis.ScheduleSmart, linkMode, Config{Target: backend.Wasm})
		if err != nil {
			t.Fatalf("%s/%s: wasm link: %v", name, lm, err)
		}
		for _, n := range []int64{0, 3, -5} {
			var vout, wout bytes.Buffer
			vret, _, verr := Exec(vmRes.Program, &vout, n)
			wret, werr := ExecWasm(wRes.Wasm, &wout, 0, n)
			if verr != nil || werr != nil {
				t.Fatalf("%s/%s: n=%d: vm err=%v wasm err=%v", name, lm, n, verr, werr)
			}
			if vret != wret {
				t.Errorf("%s/%s: n=%d: vm=%d wasm=%d", name, lm, n, vret, wret)
			}
			if vout.String() != wout.String() {
				t.Errorf("%s/%s: n=%d: output disagreement:\nvm:\n%s\nwasm:\n%s",
					name, lm, n, vout.String(), wout.String())
			}
		}
	}
}
