package driver

import "testing"

// Regression: a mutable let inside a non-block lambda body (if-expression)
// captured by a nested lambda must still be boxed in the SSA baseline.
func TestSSABoxingInNonBlockLambdaBody(t *testing.T) {
	src := `
fn call(f: fn(i64) -> i64, x: i64) -> i64 { f(x) }
fn main(n: i64) -> i64 {
	let outer = |x: i64| if x > 0 {
		let mut m = 0;
		let bump = || { m = m + x; };
		bump();
		bump();
		m
	} else { 0 };
	call(outer, n)
}`
	want := int64(14)
	got, _, err := RunSSA(src, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("ssa: got %d, want %d", got, want)
	}
	runBoth(t, src, want, 7)
}
