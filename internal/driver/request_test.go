package driver

import (
	"bytes"
	"testing"

	"thorin/internal/transform"
)

const requestSrc = `
fn fib(n: i64) -> i64 { if n < 2 { n } else { fib(n - 1) + fib(n - 2) } }
fn main(n: i64) -> i64 { fib(n) }
`

func intp(n int) *int { return &n }

// TestRequestDefaults: the zero request compiles like a plain
// `thorinc file.imp` — full -O2 spec, smart schedule, fail-fast.
func TestRequestDefaults(t *testing.T) {
	req := &Request{Source: requestSrc}
	spec, err := req.ResolvedSpec()
	if err != nil {
		t.Fatal(err)
	}
	if want := transform.SpecFor(transform.OptAll()); spec != want {
		t.Errorf("default spec %q, want %q", spec, want)
	}
	_, name, err := req.ResolvedSchedule()
	if err != nil || name != "smart" {
		t.Errorf("default schedule %q err=%v, want smart", name, err)
	}
	cfg, err := req.Config("")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.OnPassFailure != FailFast {
		t.Error("default policy is not FailFast")
	}

	res, err := CompileRequest(req, "")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Exec(res.Program, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
}

// TestRequestValidation: malformed knobs are rejected with errors, not
// silently defaulted.
func TestRequestValidation(t *testing.T) {
	if _, err := CompileRequest(&Request{}, ""); err == nil {
		t.Error("empty source accepted")
	}
	if _, err := (&Request{Opt: intp(7)}).ResolvedSpec(); err == nil {
		t.Error("opt level 7 accepted")
	}
	if _, _, err := (&Request{Schedule: "sideways"}).ResolvedSchedule(); err == nil {
		t.Error("bad schedule accepted")
	}
	if _, err := (&Request{OnFailure: "shrug"}).Config(""); err == nil {
		t.Error("bad on_failure accepted")
	}
	if _, err := (&Request{Budget: "nodes=-3"}).Config(""); err == nil {
		t.Error("bad budget accepted")
	}
}

// TestArtifactRoundTrip: encode → decode reproduces a runnable program,
// and version mismatches are rejected.
func TestArtifactRoundTrip(t *testing.T) {
	req := &Request{Source: requestSrc, Opt: intp(2)}
	res, err := CompileRequest(req, "")
	if err != nil {
		t.Fatal(err)
	}
	art := NewArtifact(res, res.Spec, "smart")
	data, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Exec(back.Program, nil, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got != 144 {
		t.Errorf("decoded program: fib(12) = %d, want 144", got)
	}

	bad := bytes.Replace(data, []byte(Version), []byte("thorin-go/0"), 1)
	if _, err := DecodeArtifact(bad); err == nil {
		t.Error("artifact with wrong version accepted")
	}
}

// TestArtifactDeterministic: the encoded artifact is byte-identical across
// jobs levels and with incremental rewriting on or off — the property the
// compile server's cache keying relies on to exclude those knobs from the
// key.
func TestArtifactDeterministic(t *testing.T) {
	var ref []byte
	for _, cfg := range []Request{
		{Source: requestSrc, Jobs: 1},
		{Source: requestSrc, Jobs: 4},
		{Source: requestSrc, Jobs: 4, DisableIncremental: true},
	} {
		req := cfg
		res, err := CompileRequest(&req, "")
		if err != nil {
			t.Fatal(err)
		}
		data, err := NewArtifact(res, res.Spec, "smart").Encode()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = data
		} else if !bytes.Equal(ref, data) {
			t.Errorf("artifact bytes differ for config %+v", cfg)
		}
	}
}
