package driver_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/driver"
	"thorin/internal/ir"
	"thorin/internal/link"
	"thorin/internal/transform"
)

const (
	modSrcC = "module c;\nexport fn add(a: i64, b: i64) -> i64 { a + b }\n"
	modSrcB = "module b;\nimport fn add(i64, i64) -> i64 from c;\nexport add;\nexport fn twice(x: i64) -> i64 { add(x, x) }\n"
	modSrcA = "module a;\nimport fn twice(i64) -> i64 from b;\nimport fn add(i64, i64) -> i64 from b;\nfn main(n: i64) -> i64 { add(twice(n), 1) }\n"
)

func modSet() []string { return []string{modSrcA, modSrcB, modSrcC} }

func fullSpec() string { return transform.SpecFor(transform.OptAll()) }

// TestCompileModulesExec: the three-module program (a imports from b,
// which re-exports c's add) compiles separately, links, and runs correctly
// in both resolution modes: main(5) = twice(5) + 1 = 11.
func TestCompileModulesExec(t *testing.T) {
	for _, mode := range []link.Mode{link.Trampoline, link.Mangle} {
		res, err := driver.CompileModules(modSet(), fullSpec(), analysis.ScheduleSmart, mode, driver.Config{VerifyEach: true})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var out bytes.Buffer
		v, _, err := driver.Exec(res.Program, &out, 5)
		if err != nil {
			t.Fatalf("%s: exec: %v", mode, err)
		}
		if v != 11 {
			t.Fatalf("%s: got %d, want 11", mode, v)
		}
	}
}

func modulesIR(t *testing.T, sources []string, mode link.Mode, jobs int, disableIncremental bool) string {
	t.Helper()
	res, err := driver.CompileModules(sources, fullSpec(), analysis.ScheduleSmart, mode,
		driver.Config{Jobs: jobs, DisableIncremental: disableIncremental})
	if err != nil {
		t.Fatalf("jobs=%d incremental=%v: %v", jobs, !disableIncremental, err)
	}
	var buf bytes.Buffer
	ir.Print(&buf, res.World)
	return buf.String()
}

// TestModulesOrderIndependent: the linker sorts modules by name, so every
// permutation of the source list produces byte-identical linked IR.
func TestModulesOrderIndependent(t *testing.T) {
	for _, mode := range []link.Mode{link.Trampoline, link.Mangle} {
		ref := modulesIR(t, []string{modSrcA, modSrcB, modSrcC}, mode, 1, false)
		for _, perm := range [][]string{
			{modSrcB, modSrcC, modSrcA},
			{modSrcC, modSrcA, modSrcB},
			{modSrcC, modSrcB, modSrcA},
		} {
			if got := modulesIR(t, perm, mode, 1, false); got != ref {
				t.Fatalf("%s: linked IR depends on module input order", mode)
			}
		}
	}
}

// TestModulesDeterministicAcrossJobsAndIncremental extends the determinism
// suite to separate compilation: the linked program's printed IR must be
// byte-identical across -jobs 1/4/8, with incremental rewriting on or off,
// and across repeated runs, in both link modes.
func TestModulesDeterministicAcrossJobsAndIncremental(t *testing.T) {
	for _, mode := range []link.Mode{link.Trampoline, link.Mangle} {
		ref := modulesIR(t, modSet(), mode, 1, false)
		if ref == "" {
			t.Fatalf("%s: empty printed IR", mode)
		}
		for _, jobs := range []int{1, 4, 8} {
			for run := 0; run < 2; run++ {
				if got := modulesIR(t, modSet(), mode, jobs, false); got != ref {
					t.Fatalf("%s: jobs=%d run=%d: linked IR differs", mode, jobs, run)
				}
			}
			if got := modulesIR(t, modSet(), mode, jobs, true); got != ref {
				t.Fatalf("%s: jobs=%d: linked IR with -incremental=off differs", mode, jobs)
			}
		}
	}
}

// TestModuleExampleFromDisk compiles the shipped examples/modules program
// (a imports b, b imports and re-exports c) in both modes and at several
// jobs levels: main(4) = sumsq(4) + 4 = 34, byte-identical IR throughout.
func TestModuleExampleFromDisk(t *testing.T) {
	var sources []string
	for _, f := range []string{"a.imp", "b.imp", "c.imp"} {
		b, err := os.ReadFile(filepath.Join("../../examples/modules", f))
		if err != nil {
			t.Fatalf("example missing: %v", err)
		}
		sources = append(sources, string(b))
	}
	for _, mode := range []link.Mode{link.Trampoline, link.Mangle} {
		ref := modulesIR(t, sources, mode, 1, false)
		for _, jobs := range []int{4, 8} {
			if got := modulesIR(t, sources, mode, jobs, false); got != ref {
				t.Fatalf("%s: jobs=%d: linked IR differs", mode, jobs)
			}
			if got := modulesIR(t, sources, mode, jobs, true); got != ref {
				t.Fatalf("%s: jobs=%d incremental=off: linked IR differs", mode, jobs)
			}
		}
		res, err := driver.CompileModules(sources, fullSpec(), analysis.ScheduleSmart, mode, driver.Config{})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		v, _, err := driver.Exec(res.Program, nil, 4)
		if err != nil || v != 34 {
			t.Fatalf("%s: main(4) = %d err=%v, want 34", mode, v, err)
		}
	}
}

// TestModuleArtifactRoundTrip: a module survives encode → decode → parse
// and the reconstructed set links and runs like the original. This is the
// compile server's warm path.
func TestModuleArtifactRoundTrip(t *testing.T) {
	spec := fullSpec()
	units, err := driver.ParseModules(modSet())
	if err != nil {
		t.Fatal(err)
	}
	var mods []*link.Module
	for _, u := range units {
		m, err := driver.CompileModuleUnit(u, spec, driver.Config{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := driver.NewModuleArtifact(m, driver.ModuleSpec(spec)).Encode()
		if err != nil {
			t.Fatal(err)
		}
		art, err := driver.DecodeModuleArtifact(data)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := art.Module()
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, rt)
	}
	res, err := driver.LinkCompiled(mods, spec, link.Trampoline, analysis.ScheduleSmart, driver.Config{VerifyEach: true})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := driver.Exec(res.Program, nil, 5)
	if err != nil || v != 11 {
		t.Fatalf("round-tripped modules: main(5) = %d err=%v, want 11", v, err)
	}
}

// TestModuleArtifactRejectsWholeProgram: the two artifact kinds must not
// decode as each other (the cache holds both under one key space).
func TestModuleArtifactRejectsWholeProgram(t *testing.T) {
	res, err := driver.Compile("fn main(n: i64) -> i64 { n }", transform.OptAll(), analysis.ScheduleSmart)
	if err != nil {
		t.Fatal(err)
	}
	data, err := driver.NewArtifact(res, res.Spec, "smart").Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := driver.DecodeModuleArtifact(data); err == nil {
		t.Fatal("whole-program artifact decoded as a module artifact")
	}
}

// TestCompileRequestSources: the wire request compiles module sets, and
// malformed combinations fail with clear errors.
func TestCompileRequestSources(t *testing.T) {
	res, err := driver.CompileRequest(&driver.Request{Sources: modSet()}, "")
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := driver.Exec(res.Program, nil, 5)
	if err != nil || v != 11 {
		t.Fatalf("main(5) = %d err=%v, want 11", v, err)
	}
	if _, err := driver.CompileRequest(&driver.Request{Source: "fn main(n: i64) -> i64 { n }", Sources: modSet()}, ""); err == nil || !strings.Contains(err.Error(), "both source and sources") {
		t.Fatalf("source+sources: %v", err)
	}
	if _, err := driver.CompileRequest(&driver.Request{Sources: modSet(), Link: "bogus"}, ""); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("bad link mode: %v", err)
	}
	if _, err := driver.CompileRequest(&driver.Request{}, ""); err == nil || !strings.Contains(err.Error(), "no source") {
		t.Fatalf("empty request: %v", err)
	}
}

// TestIncompatibleImportSurfacesEarly: the type error comes from import
// resolution before any module is compiled, and names the chain.
func TestIncompatibleImportSurfacesEarly(t *testing.T) {
	srcs := []string{
		"module a;\nimport fn add(i64, i64) -> i64 from b;\nfn main(n: i64) -> i64 { add(n, n) }\n",
		"module b;\nimport fn add(f64, f64) -> f64 from c;\nexport add;\n",
		"module c;\nexport fn add(x: f64, y: f64) -> f64 { x + y }\n",
	}
	_, err := driver.CompileModules(srcs, fullSpec(), analysis.ScheduleSmart, link.Trampoline, driver.Config{})
	if err == nil || !strings.Contains(err.Error(), "incompatible import type") {
		t.Fatalf("got %v, want incompatible import type", err)
	}
	if !strings.Contains(err.Error(), "via re-export chain b -> c") {
		t.Fatalf("error does not name the chain: %v", err)
	}
}
