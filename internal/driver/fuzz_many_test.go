package driver

import (
	"strings"
	"testing"

	"thorin/internal/fuzzgen"
	"thorin/internal/impala"
	"thorin/internal/transform"
)

// TestFuzzExtended runs a larger seed range than TestFuzzDifferential.
// Use -short to skip it.
func TestFuzzExtended(t *testing.T) {
	if testing.Short() {
		t.Skip("extended fuzzing skipped in -short mode")
	}
	for seed := 1000; seed < 2500; seed++ {
		src := fuzzgen.Program(int64(seed))
		prog, err := impala.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if err := impala.Check(prog); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		arg := int64(seed%17 - 8)
		in, err := impala.NewInterp(prog, nil, 0)
		if err != nil {
			t.Fatalf("seed %d interp: %v\n%s", seed, err, src)
		}
		ref, err := in.Run(arg)
		refTrap := err != nil && strings.Contains(err.Error(), "by zero")
		if err != nil && !refTrap {
			t.Fatalf("seed %d interp: %v\n%s", seed, err, src)
		}
		for _, opts := range []transform.Options{transform.OptAll(), transform.OptNone()} {
			got, _, err := Run(src, opts, nil, arg)
			if refTrap {
				if err == nil || !strings.Contains(err.Error(), "by zero") {
					t.Fatalf("seed %d: got (%d, %v), reference trapped on division by zero\n%s",
						seed, got, err, src)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, src)
			}
			if got != ref.I {
				t.Fatalf("seed %d: got %d want %d\n%s", seed, got, ref.I, src)
			}
		}
		got, _, err := RunSSA(src, nil, arg)
		if refTrap {
			if err == nil || !strings.Contains(err.Error(), "by zero") {
				t.Fatalf("seed %d ssa: got (%d, %v), reference trapped on division by zero\n%s",
					seed, got, err, src)
			}
			continue
		}
		if err != nil {
			t.Fatalf("seed %d ssa: %v\n%s", seed, err, src)
		}
		if got != ref.I {
			t.Fatalf("seed %d ssa: got %d want %d\n%s", seed, got, ref.I, src)
		}
	}
}
