package driver

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/backend"
	"thorin/internal/ir"
	"thorin/internal/transform"
)

// failingBackend is an injected emitter that always fails with a typed
// backend error, standing in for an emission bug or unsupported IR shape.
type failingBackend struct{}

func (failingBackend) Target() backend.Target { return backend.Wasm }

func (failingBackend) Compile(w *ir.World, mainName string, cfg backend.Config) (*backend.Output, error) {
	return nil, backend.Errf(backend.Wasm, mainName, fmt.Errorf("injected emission failure"))
}

// TestBackendErrorCrashBundle: a backend failure is routed into a crash
// bundle exactly like a pass failure — the bundle's pass field names the
// emitter ("backend:<target>"), the returned error chain carries both the
// bundle path and the typed *backend.Error.
func TestBackendErrorCrashBundle(t *testing.T) {
	restore := backend.Override(failingBackend{})
	defer restore()

	dir := t.TempDir()
	src := "fn main(n: i64) -> i64 { n + 1 }"
	_, err := CompileSpec(src, transform.SpecFor(transform.OptNone()), analysis.ScheduleSmart, Config{
		Target:   backend.Wasm,
		CrashDir: dir,
	})
	if err == nil {
		t.Fatal("compile with injected backend failure succeeded")
	}

	var berr *backend.Error
	if !errors.As(err, &berr) {
		t.Fatalf("error chain has no *backend.Error: %v", err)
	}
	if berr.Target != backend.Wasm || berr.Func != "main" {
		t.Errorf("backend error names %s/%s, want wasm/main", berr.Target, berr.Func)
	}

	bundle, ok := CrashBundle(err)
	if !ok {
		t.Fatalf("no crash bundle recorded in %v", err)
	}
	js, rerr := os.ReadFile(filepath.Join(bundle, "repro.json"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	var man struct {
		Pass  string `json:"pass"`
		Error string `json:"error"`
	}
	if jerr := json.Unmarshal(js, &man); jerr != nil {
		t.Fatal(jerr)
	}
	if man.Pass != "backend:wasm" {
		t.Errorf("bundle pass = %q, want backend:wasm", man.Pass)
	}
	if !strings.Contains(man.Error, "injected emission failure") {
		t.Errorf("bundle error %q does not record the cause", man.Error)
	}
	if _, serr := os.Stat(filepath.Join(bundle, "input.imp")); serr != nil {
		t.Errorf("bundle is missing the source: %v", serr)
	}
}

// TestBackendPanicContained: a panicking backend surfaces as a typed
// backend error, not a process crash, with the panic and stack recorded.
func TestBackendPanicContained(t *testing.T) {
	restore := backend.Override(panickingBackend{})
	defer restore()

	_, err := CompileSpec("fn main(n: i64) -> i64 { n }", transform.SpecFor(transform.OptNone()),
		analysis.ScheduleSmart, Config{Target: backend.Wasm})
	var berr *backend.Error
	if !errors.As(err, &berr) {
		t.Fatalf("panicking backend did not yield a *backend.Error: %v", err)
	}
	if berr.Target != backend.Wasm {
		t.Errorf("backend error names target %s, want wasm", berr.Target)
	}
	if !strings.Contains(err.Error(), "deliberate panic") {
		t.Errorf("error %q does not record the panic value", err)
	}
}

type panickingBackend struct{}

func (panickingBackend) Target() backend.Target { return backend.Wasm }

func (panickingBackend) Compile(w *ir.World, mainName string, cfg backend.Config) (*backend.Output, error) {
	panic("deliberate panic")
}
