package driver

import (
	"context"
	"fmt"
	"time"

	"thorin/internal/analysis"
	"thorin/internal/backend"
	"thorin/internal/link"
	"thorin/internal/pm"
	"thorin/internal/transform"
)

// Version identifies the compiler build for artifact provenance and cache
// keying. Any change that can alter the produced program for the same
// (source, spec, schedule) input — IR semantics, pass behavior, codegen,
// bytecode format — must bump it, because a content-addressed artifact
// cache (internal/server) includes it in every key: bumping the version
// invalidates every cached artifact at once.
const Version = "thorin-go/8"

// Request is the wire-shaped form of one compilation: everything a client
// can ask for, expressed in plain strings and integers so it serializes to
// JSON and can be hashed into a stable cache key. The compile server and
// `thorinc -server` both speak this type; Resolve turns it into the
// concrete spec/mode/Config triple CompileSpec consumes.
type Request struct {
	// Source is the Impala program text. Exactly one of Source and Sources
	// must be set.
	Source string `json:"source"`
	// Sources are the module sources of a separate compilation: each must
	// open with `module NAME;`, module names must be unique, and exactly
	// one module must define main. The set is compiled per-module and
	// linked (see internal/link); order does not matter.
	Sources []string `json:"sources,omitempty"`
	// Link is the cross-module resolution mode for Sources: "trampoline"
	// (default) or "mangle". Ignored for single-source requests.
	Link string `json:"link,omitempty"`
	// Spec is an explicit pass-pipeline spec. When empty, Opt selects the
	// canonical spec (transform.SpecFor), mirroring thorinc's -passes/-O.
	Spec string `json:"spec,omitempty"`
	// Opt is the optimization level (0, 1, 2) used when Spec is empty.
	// The zero value means -O2, the thorinc default, so the empty Request
	// compiles like a plain `thorinc file.imp`.
	Opt *int `json:"opt,omitempty"`
	// Schedule picks the primop placement mode: "early", "late" or
	// "smart" (default).
	Schedule string `json:"schedule,omitempty"`
	// Target selects the code generation backend: "vm" (default) or
	// "wasm". The target changes the artifact payload, so it enters the
	// cache key.
	Target string `json:"target,omitempty"`
	// Jobs is the worker count for parallel scope analysis. It does not
	// enter the cache key: the produced program is byte-identical at
	// every jobs level.
	Jobs int `json:"jobs,omitempty"`
	// OnFailure picks the pass-failure policy: "fail" (default) or
	// "degrade".
	OnFailure string `json:"on_failure,omitempty"`
	// Budget is a pm.ParseBudget spec, e.g. "iters=8,nodes=200000,time=30s".
	Budget string `json:"budget,omitempty"`
	// DeadlineMs, when positive, bounds the request's wall-clock compile
	// time in milliseconds: the compile is run under a context with this
	// timeout and stops cooperatively at the next pass boundary when it
	// expires (pm.ErrDeadline; the server answers 504). Like the nodes/time
	// budgets it never enters the cache key — a deadline can only fail a
	// compile, never change a successful one's output.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// DisableIncremental turns off journal-driven pass skipping. Like
	// Jobs it never enters the cache key: output is identical either way.
	DisableIncremental bool `json:"disable_incremental,omitempty"`
}

// ResolvedSpec returns the pipeline spec the request will compile with:
// the explicit Spec if given, else the canonical spec for Opt.
func (r *Request) ResolvedSpec() (string, error) {
	if r.Spec != "" {
		return r.Spec, nil
	}
	opt := 2
	if r.Opt != nil {
		opt = *r.Opt
	}
	switch opt {
	case 0:
		return transform.SpecFor(transform.OptNone()), nil
	case 1:
		return transform.SpecFor(transform.Options{Mem2Reg: true}), nil
	case 2:
		return transform.SpecFor(transform.OptAll()), nil
	}
	return "", fmt.Errorf("driver: bad opt level %d (want 0, 1 or 2)", opt)
}

// ResolvedLinkMode returns the link mode for a multi-source request.
func (r *Request) ResolvedLinkMode() (link.Mode, error) {
	if r.Link == "" {
		return link.Trampoline, nil
	}
	return link.ParseMode(r.Link)
}

// ResolvedSchedule returns the schedule mode and its canonical name.
func (r *Request) ResolvedSchedule() (analysis.Mode, string, error) {
	switch r.Schedule {
	case "", "smart":
		return analysis.ScheduleSmart, "smart", nil
	case "early":
		return analysis.ScheduleEarly, "early", nil
	case "late":
		return analysis.ScheduleLate, "late", nil
	}
	return 0, "", fmt.Errorf("driver: bad schedule %q (want early, late or smart)", r.Schedule)
}

// ResolvedTarget returns the backend target the request compiles for and
// its canonical name ("" resolves to the VM default).
func (r *Request) ResolvedTarget() (backend.Target, string, error) {
	t, err := backend.ParseTarget(r.Target)
	if err != nil {
		return "", "", err
	}
	return t, string(t), nil
}

// Config resolves the request's policy knobs into a driver Config.
// crashDir is supplied by the caller (the daemon owns the bundle
// directory, not the client).
func (r *Request) Config(crashDir string) (Config, error) {
	target, _, err := r.ResolvedTarget()
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Jobs:               r.Jobs,
		CrashDir:           crashDir,
		DisableIncremental: r.DisableIncremental,
		Target:             target,
	}
	switch r.OnFailure {
	case "", "fail":
		cfg.OnPassFailure = FailFast
	case "degrade":
		cfg.OnPassFailure = Degrade
	default:
		return Config{}, fmt.Errorf("driver: bad on_failure %q (want fail or degrade)", r.OnFailure)
	}
	if r.Budget != "" {
		b, err := pm.ParseBudget(r.Budget)
		if err != nil {
			return Config{}, err
		}
		cfg.Budget = b
	}
	return cfg, nil
}

// CompileRequest runs one wire-shaped request through the full pipeline.
// It is CompileSpec with the request's knobs resolved; pass failures are
// handled per the request's on_failure policy and, with crashDir set, leave
// a reproduction bundle exactly like a thorinc run would.
func CompileRequest(req *Request, crashDir string) (*Result, error) {
	return CompileRequestCtx(context.Background(), req, crashDir)
}

// CompileRequestCtx is CompileRequest under a caller context: the compile
// observes ctx (and the request's own deadline_ms, whichever is tighter)
// cooperatively, stopping at the next pass boundary with pm.ErrCanceled or
// pm.ErrDeadline. The compile server passes the HTTP request context here,
// which is how a disconnected client's compile frees its workers.
func CompileRequestCtx(ctx context.Context, req *Request, crashDir string) (*Result, error) {
	if req.Source == "" && len(req.Sources) == 0 {
		return nil, fmt.Errorf("driver: request has no source")
	}
	if req.Source != "" && len(req.Sources) > 0 {
		return nil, fmt.Errorf("driver: request has both source and sources")
	}
	spec, err := req.ResolvedSpec()
	if err != nil {
		return nil, err
	}
	mode, _, err := req.ResolvedSchedule()
	if err != nil {
		return nil, err
	}
	cfg, err := req.Config(crashDir)
	if err != nil {
		return nil, err
	}
	if req.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
		defer cancel()
	}
	cfg.Ctx = ctx
	if len(req.Sources) > 0 {
		linkMode, err := req.ResolvedLinkMode()
		if err != nil {
			return nil, err
		}
		return CompileModules(req.Sources, spec, mode, linkMode, cfg)
	}
	return CompileSpec(req.Source, spec, mode, cfg)
}
