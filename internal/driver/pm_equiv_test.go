package driver_test

// Pipeline-equivalence tests: driving the compiler through the pass manager
// must be observationally identical to the frozen pre-pass-manager pipeline
// (transform.OptimizeLegacy) — same VM results and output, same post-opt IR
// statistics — for every benchmark program and optimization level.
//
// One documented exception: on compose/functional at -O2 the fix(...) group
// converges only in its second iteration — inlining and slot promotion from
// iteration one expose two more contifiable functions — and the fixpoint
// pipeline eliminates the residual closures and indirect calls the
// hardcoded single-shot pipeline left behind. For that arm the test asserts
// the divergence is a strict improvement instead of equality.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thorin/internal/analysis"
	vmbackend "thorin/internal/backend/vm"
	"thorin/internal/bench"
	"thorin/internal/driver"
	"thorin/internal/impala"
	"thorin/internal/ir"
	"thorin/internal/transform"
	"thorin/internal/vm"
)

// equivN keeps the sweep fast (same spirit as the bench suite's smallN).
var equivN = map[string]int64{
	"fib": 15, "mapreduce": 400, "filter": 400, "compose": 400,
	"mandelbrot": 8, "nbody": 40, "spectralnorm": 8, "qsort": 250,
	"matmul": 6, "nqueens": 5,
}

// fixpointWins lists the arms where the fix group needs a second changing
// iteration and ends up with strictly better IR than the legacy pipeline
// (see the package comment). Everywhere else equality is required.
var fixpointWins = map[string]bool{
	"compose/functional/O2": true,
}

// compileLegacy runs the frozen hardcoded pipeline.
func compileLegacy(src string, opts transform.Options) (*vm.Program, driver.IRStats, error) {
	w, err := impala.Compile(src)
	if err != nil {
		return nil, driver.IRStats{}, err
	}
	transform.OptimizeLegacy(w, opts)
	if err := ir.Verify(w); err != nil {
		return nil, driver.IRStats{}, fmt.Errorf("legacy pipeline produced invalid IR: %w", err)
	}
	prog, err := vmbackend.Compile(w, "main", vmbackend.Config{Mode: analysis.ScheduleSmart})
	if err != nil {
		return nil, driver.IRStats{}, err
	}
	return prog, driver.MeasureIR(w), nil
}

func execOut(t *testing.T, prog *vm.Program, n int64) (int64, string, vm.Counters) {
	t.Helper()
	var out bytes.Buffer
	v, c, err := driver.Exec(prog, &out, n)
	if err != nil {
		t.Fatal(err)
	}
	return v, out.String(), c
}

func TestPipelineEquivalence(t *testing.T) {
	levels := []struct {
		name string
		opts transform.Options
	}{
		{"O2", transform.OptAll()},
		{"O1", transform.Options{Mem2Reg: true}},
		{"O0", transform.OptNone()},
		{"mangle-only", transform.OptMangleOnly()},
	}
	for i := range bench.Suite {
		p := &bench.Suite[i]
		n := equivN[p.Name]
		if n == 0 {
			t.Fatalf("no problem size for %s", p.Name)
		}
		variants := []struct{ name, src string }{
			{"functional", p.Functional},
			{"imperative", p.Imperative},
		}
		for _, v := range variants {
			for _, lvl := range levels {
				t.Run(p.Name+"/"+v.name+"/"+lvl.name, func(t *testing.T) {
					res, err := driver.CompileSpec(v.src, transform.SpecFor(lvl.opts),
						analysis.ScheduleSmart, driver.Config{VerifyEach: true})
					if err != nil {
						t.Fatal(err)
					}
					legacyProg, legacyIR, err := compileLegacy(v.src, lvl.opts)
					if err != nil {
						t.Fatal(err)
					}
					pmVal, pmOut, pmC := execOut(t, res.Program, n)
					lgVal, lgOut, lgC := execOut(t, legacyProg, n)
					if pmVal != lgVal {
						t.Errorf("results diverge: pm=%d legacy=%d", pmVal, lgVal)
					}
					if pmOut != lgOut {
						t.Errorf("printed output diverges:\npm:     %q\nlegacy: %q", pmOut, lgOut)
					}
					if fixpointWins[p.Name+"/"+v.name+"/"+lvl.name] {
						// The known fixpoint win must be a strict improvement.
						if res.IRStats.HigherOrder >= legacyIR.HigherOrder {
							t.Errorf("expected the fixpoint to eliminate higher-order conts: pm=%+v legacy=%+v",
								res.IRStats, legacyIR)
						}
						if pmC.IndirectCalls >= lgC.IndirectCalls || pmC.ClosureAllocs >= lgC.ClosureAllocs {
							t.Errorf("expected fewer indirect calls and closures: pm=%+v legacy=%+v", pmC, lgC)
						}
						return
					}
					if res.IRStats != legacyIR {
						t.Errorf("IRStats diverge: pm=%+v legacy=%+v", res.IRStats, legacyIR)
					}
					if pmC != lgC {
						t.Errorf("VM counters diverge: pm=%+v legacy=%+v", pmC, lgC)
					}
				})
			}
		}
	}
}

// TestCanonicalSpecs pins the Options → spec mapping.
func TestCanonicalSpecs(t *testing.T) {
	cases := []struct {
		opts transform.Options
		want string
	}{
		{transform.OptAll(), "cleanup,pe,fix(cff,contify,mem2reg,inline-once),cleanup,closure"},
		{transform.OptNone(), "cleanup,cleanup,closure"},
		{transform.Options{Mem2Reg: true}, "cleanup,fix(mem2reg),cleanup,closure"},
		{transform.OptMangleOnly(), "cleanup,fix(cff,mem2reg),cleanup,closure"},
	}
	for _, tc := range cases {
		if got := transform.SpecFor(tc.opts); got != tc.want {
			t.Errorf("SpecFor(%+v) = %q, want %q", tc.opts, got, tc.want)
		}
	}
}

// TestFixpointSecondIterationIsNoop asserts via the pass report that the
// canonical O2 fix group converges after one iteration on every benchmark
// and example program: the second iteration applies zero rewrites. This is
// what makes dropping the hardcoded pipeline's redundant post-mangling
// Cleanup safe. The one arm where iteration two legitimately rewrites
// (compose — the known fixpoint win) must instead converge by iteration
// three.
func TestFixpointSecondIterationIsNoop(t *testing.T) {
	srcs := map[string]string{}
	for i := range bench.Suite {
		p := &bench.Suite[i]
		srcs["bench/"+p.Name+"/functional"] = p.Functional
		srcs["bench/"+p.Name+"/imperative"] = p.Imperative
	}
	matches, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.imp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no example .imp programs found")
	}
	for _, m := range matches {
		src, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		srcs["examples/"+strings.TrimSuffix(filepath.Base(m), ".imp")] = string(src)
	}
	spec := transform.SpecFor(transform.OptAll())
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			res, err := driver.CompileSpec(src, spec, analysis.ScheduleSmart, driver.Config{})
			if err != nil {
				t.Fatal(err)
			}
			rep := res.Report
			if len(rep.IterRuns(1)) == 0 {
				t.Fatal("fix group never ran")
			}
			if rep.Saturated {
				t.Error("fix group must converge")
			}
			if fixpointWins[strings.TrimPrefix(name, "bench/")+"/O2"] {
				if !rep.IterChanged(2) || rep.IterChanged(3) {
					t.Errorf("the known fixpoint win must rewrite in iteration 2 and settle by 3")
				}
				return
			}
			for _, run := range rep.IterRuns(2) {
				if run.Rewrites != 0 || run.Changed {
					t.Errorf("second fix iteration must be a no-op, but %s applied %d rewrites (changed=%v)",
						run.Label(), run.Rewrites, run.Changed)
				}
			}
		})
	}
}
