// Package driver wires the full compilation pipeline together: Impala
// source → Thorin IR → optimizer → bytecode → VM. It is the programmatic
// equivalent of the thorinc command and the entry point used by the
// benchmark harness and the examples.
package driver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"thorin/internal/analysis"
	"thorin/internal/backend"
	_ "thorin/internal/backend/vm" // register the VM target
	wasmbackend "thorin/internal/backend/wasm"
	"thorin/internal/impala"
	"thorin/internal/ir"
	"thorin/internal/pm"
	"thorin/internal/ssa"
	"thorin/internal/transform"
	"thorin/internal/vm"
	"thorin/internal/wasm"
)

// Result bundles everything produced by one compilation.
type Result struct {
	World *ir.World
	// Target is the backend the program was compiled for.
	Target backend.Target
	// Program is the bytecode program (Target backend.VM; nil otherwise).
	Program *vm.Program
	// Wasm is the encoded wasm module (Target backend.Wasm; nil otherwise).
	Wasm  []byte
	Stats transform.Stats
	// IRStats are taken after optimization.
	IRStats IRStats
	// Report is the pass manager's per-pass instrumentation of the run.
	Report *pm.Report
	// Spec is the pipeline spec the result was actually compiled with. It
	// differs from the requested spec when graceful degradation stripped a
	// faulting pass.
	Spec string
	// Degraded is set when the requested pipeline failed and the result
	// comes from a reduced pipeline instead (see Config.OnPassFailure).
	Degraded bool
	// FailedPasses names the passes stripped during degradation, in the
	// order they failed.
	FailedPasses []string
	// CrashBundle is the path of the reproduction bundle written for the
	// first failure, if Config.CrashDir was set.
	CrashBundle string
	// CrashBundleErr reports why the bundle could not be written when the
	// write failed (CrashBundle is then empty); the pass failure that
	// triggered the bundle is never masked by it.
	CrashBundleErr string
}

// FailurePolicy selects how CompileSpec reacts when an optimizer pass
// fails (panics, returns an error, or leaves invalid IR).
type FailurePolicy int

const (
	// FailFast aborts the compile on the first pass failure. The returned
	// error names the pass and, when Config.CrashDir is set, the
	// reproduction bundle.
	FailFast FailurePolicy = iota
	// Degrade strips the faulting pass from the pipeline and recompiles
	// from source on a fresh world (the half-rewritten world cannot be
	// trusted), falling back to the minimal pipeline if passes keep
	// failing. The result is less optimized but verified correct.
	Degrade
)

// fallbackSpec is the last-resort pipeline for graceful degradation:
// cleanup is needed to drop dead IR and closure is needed because codegen
// requires closure-converted input.
const fallbackSpec = "cleanup,closure"

// Config controls the optimizer run beyond the pipeline spec itself.
type Config struct {
	// VerifyEach runs ir.Verify after every pass and fails the compile
	// naming the offending pass (a debug mode; the differential tests
	// enable it).
	VerifyEach bool
	// Jobs sets the worker count for the parallel analysis phase of
	// scope-level passes. 0 keeps the context default (1, or THORIN_JOBS).
	// The produced IR and program are identical at every jobs level.
	Jobs int
	// OnPassFailure picks between aborting (FailFast, the default) and
	// graceful degradation when a pass fails.
	OnPassFailure FailurePolicy
	// Budget bounds the optimizer run (fixpoint iterations, IR size,
	// wall-clock deadline). The zero value means unlimited.
	Budget pm.Budget
	// CrashDir, when non-empty, is the directory where a reproduction
	// bundle is written on pass failure (see WriteCrashBundle).
	CrashDir string
	// Target selects the code generation backend ("" and backend.VM mean
	// the bytecode VM; backend.Wasm emits a wasm module instead). The
	// target changes only the final emission step: frontend, pipeline and
	// schedule are shared, which is the point of the Backend split.
	Target backend.Target
	// DisableIncremental turns off journal-driven work skipping in the pass
	// manager (pm.Context.Incremental), so every pass runs every time it is
	// named and the analysis cache is invalidated wholesale after each
	// changing pass. The produced IR and program are byte-identical either
	// way; this is the escape hatch (and the reference mode the differential
	// tests compare against). thorinc exposes it as -incremental=off.
	DisableIncremental bool
	// Ctx, when non-nil, cancels the compile cooperatively: the pipeline
	// stops at the next pass boundary (or between parallel analysis
	// targets) with pm.ErrCanceled when the context is canceled, or
	// pm.ErrDeadline when it timed out. The compile server derives this
	// from the HTTP request context, so a disconnected client stops
	// consuming workers.
	Ctx context.Context
}

// IRStats summarizes the IR after a pipeline run.
type IRStats struct {
	Continuations int
	PrimOps       int
	HigherOrder   int // continuations violating control-flow form
}

// Compile runs the full pipeline over src. Options map to their canonical
// pass-manager spec (transform.SpecFor), so this is CompileSpec with the
// default configuration.
func Compile(src string, opts transform.Options, mode analysis.Mode) (*Result, error) {
	return CompileSpec(src, transform.SpecFor(opts), mode, Config{})
}

// CompileSpec runs the frontend, an explicit pass-manager pipeline spec
// (e.g. "cleanup,pe,fix(cff,contify,mem2reg,inline-once),cleanup,closure")
// and the backend over src. Pass failures (panics included) are handled
// per cfg.OnPassFailure; with Config.CrashDir set, the first failure also
// leaves a reproduction bundle on disk.
func CompileSpec(src, spec string, mode analysis.Mode, cfg Config) (*Result, error) {
	res, err := compileOnce(src, spec, mode, cfg)
	if err == nil {
		return res, nil
	}
	pass, isPassFailure := pm.FailedPass(err)
	if !isPassFailure {
		// A backend failure (emission bug, unsupported IR shape, backend
		// panic) is as replayable as a pass failure and deserves the same
		// reproduction bundle; the synthetic pass name records which
		// emitter failed. It is not attributable to an optimizer pass, so
		// degradation below starts from the minimal pipeline.
		var berr *backend.Error
		if !errors.As(err, &berr) {
			return nil, err
		}
		pass = "backend:" + string(berr.Target)
	}
	var bundle string
	var bundleErr error
	if cfg.CrashDir != "" {
		// A failed bundle write (read-only dir, full disk) must not mask
		// the pass failure it was meant to record: both errors are
		// reported, the original one first.
		if p, werr := WriteCrashBundle(cfg.CrashDir, src, spec, cfg, pass, err); werr == nil {
			bundle = p
		} else {
			bundleErr = werr
		}
	}
	if cfg.OnPassFailure != Degrade {
		if bundle != "" {
			return nil, &BundledError{Err: err, Bundle: bundle}
		}
		if bundleErr != nil {
			return nil, &BundleWriteError{Err: err, WriteErr: bundleErr}
		}
		return nil, err
	}
	// Graceful degradation: recompile from source with the faulting pass
	// stripped. A blown deadline must not turn a recoverable pass fault
	// into a hard failure, so retries keep the node budget but not the
	// deadline.
	degCfg := cfg
	degCfg.Budget.Deadline = time.Time{}
	tried := make(map[string]bool)
	var failed []string
	cur := spec
	for attempt := 0; attempt < 8; attempt++ {
		// An abandoned request (canceled context) gains nothing from
		// retries: every recompile would stop at its first pass boundary.
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return nil, fmt.Errorf("driver: graceful degradation abandoned: %w", err)
		}
		if p, ok := pm.FailedPass(err); ok && !tried[p] {
			tried[p] = true
			failed = append(failed, p)
			next, found, serr := pm.StripPass(cur, p)
			if serr != nil || !found || next == "" {
				next = fallbackSpec
			}
			cur = next
		} else if cur != fallbackSpec {
			// The failure is unattributable (frontend, codegen, budget) or
			// an already-stripped pass resurfaced; go straight to the
			// minimal pipeline.
			cur = fallbackSpec
		} else {
			break
		}
		res, rerr := compileOnce(src, cur, mode, degCfg)
		if rerr == nil {
			res.Degraded = true
			res.FailedPasses = failed
			res.CrashBundle = bundle
			if bundleErr != nil {
				res.CrashBundleErr = bundleErr.Error()
			}
			return res, nil
		}
		err = rerr
	}
	return nil, fmt.Errorf("driver: graceful degradation failed: %w", err)
}

// compileOnce is one frontend → pipeline → verify → backend run with no
// failure handling.
func compileOnce(src, spec string, mode analysis.Mode, cfg Config) (*Result, error) {
	w, err := compileFrontend(src)
	if err != nil {
		return nil, err
	}
	pl, err := pm.Parse(spec)
	if err != nil {
		return nil, err
	}
	ctx := pm.NewContext(w)
	ctx.VerifyEach = cfg.VerifyEach
	ctx.Budget = cfg.Budget
	ctx.Ctx = cfg.Ctx
	if cfg.Jobs > 0 {
		ctx.Jobs = cfg.Jobs
	}
	if cfg.DisableIncremental {
		ctx.Incremental = false
	}
	rep, err := pl.Run(ctx)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(w); err != nil {
		return nil, fmt.Errorf("driver: optimizer produced invalid IR: %w", err)
	}
	out, target, err := compileBackend(w, mode, cfg.Target)
	if err != nil {
		return nil, err
	}
	return &Result{
		World:   w,
		Target:  target,
		Program: out.VM,
		Wasm:    out.Wasm,
		Stats:   transform.PipelineStats(ctx),
		IRStats: MeasureIR(w),
		Report:  rep,
		Spec:    spec,
	}, nil
}

// compileFrontend runs the Impala frontend under panic containment:
// emitter invariant violations on a checked program are bugs, but they
// must surface as errors, not take the process down.
func compileFrontend(src string) (w *ir.World, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("driver: frontend panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return impala.Compile(src)
}

// compileBackend resolves the target's registered backend and runs it
// under the same panic containment as the optimizer passes: a backend
// panic becomes a typed backend error, not a crash.
func compileBackend(w *ir.World, mode analysis.Mode, target backend.Target) (out *backend.Output, t backend.Target, err error) {
	t, err = backend.ParseTarget(string(target))
	if err != nil {
		return nil, t, err
	}
	be, err := backend.Lookup(t)
	if err != nil {
		return nil, t, err
	}
	defer func() {
		if r := recover(); r != nil {
			err = backend.Errf(t, "", fmt.Errorf("panicked: %v\n%s", r, debug.Stack()))
		}
	}()
	out, err = be.Compile(w, "main", backend.Config{Mode: mode})
	return out, t, err
}

// MeasureIR counts continuations, primop nodes and CFF violations.
func MeasureIR(w *ir.World) IRStats {
	st := IRStats{PrimOps: w.NumPrimOps()}
	for _, c := range w.Continuations() {
		if c.IsIntrinsic() {
			continue
		}
		st.Continuations++
	}
	st.HigherOrder = len(transform.HigherOrderConts(w))
	return st
}

// Run compiles src and executes main with the given i64 arguments,
// returning the first result value and the VM counters.
func Run(src string, opts transform.Options, out io.Writer, args ...int64) (int64, vm.Counters, error) {
	res, err := Compile(src, opts, analysis.ScheduleSmart)
	if err != nil {
		return 0, vm.Counters{}, err
	}
	return Exec(res.Program, out, args...)
}

// CompileSSA runs the baseline classical SSA pipeline over src.
func CompileSSA(src string) (*vm.Program, *ssa.Module, error) {
	prog, err := impala.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if err := impala.Check(prog); err != nil {
		return nil, nil, err
	}
	return ssa.CompileProgram(prog)
}

// RunSSA compiles src through the baseline SSA pipeline and executes main.
func RunSSA(src string, out io.Writer, args ...int64) (int64, vm.Counters, error) {
	prog, _, err := CompileSSA(src)
	if err != nil {
		return 0, vm.Counters{}, err
	}
	return Exec(prog, out, args...)
}

// Exec runs a compiled program's main with i64 arguments under the
// default step budget.
func Exec(prog *vm.Program, out io.Writer, args ...int64) (int64, vm.Counters, error) {
	return ExecSteps(prog, out, 0, args...)
}

// ExecSteps runs a compiled program's main with an explicit VM step budget
// (0 selects the default). The differential tests use it to give the VM a
// budget matching the reference interpreter's fuel, so a diverging
// compilation shows up as vm.ErrStepLimit instead of hanging the suite.
func ExecSteps(prog *vm.Program, out io.Writer, maxSteps int64, args ...int64) (int64, vm.Counters, error) {
	m := vm.New(prog, out)
	if maxSteps <= 0 {
		maxSteps = 4_000_000_000
	}
	m.MaxSteps = maxSteps
	vals := make([]vm.Value, len(args))
	for i, a := range args {
		vals[i] = vm.Value{I: a}
	}
	res, err := m.Run(vals...)
	if err != nil {
		return 0, m.Counters, err
	}
	if len(res) == 0 {
		return 0, m.Counters, nil
	}
	return res[0].I, m.Counters, nil
}

// ExecWasm decodes and runs a compiled wasm module's main with i64
// arguments, the wasm counterpart of ExecSteps. fuel bounds the
// instruction count (0 selects a default matching ExecSteps' budget);
// exceeding it returns wasm.ErrFuel, the analogue of vm.ErrStepLimit.
func ExecWasm(mod []byte, out io.Writer, fuel int64, args ...int64) (int64, error) {
	m, err := wasm.Decode(mod)
	if err != nil {
		return 0, err
	}
	inst, err := wasm.NewInstance(m, wasmbackend.Host(out))
	if err != nil {
		return 0, err
	}
	if fuel > 0 {
		inst.Fuel = fuel
	} else {
		inst.Fuel = 4_000_000_000
	}
	uargs := make([]uint64, len(args))
	for i, a := range args {
		uargs[i] = uint64(a)
	}
	res, err := inst.Invoke("main", uargs...)
	if err != nil {
		return 0, err
	}
	if len(res) == 0 {
		return 0, nil
	}
	return int64(res[0]), nil
}
