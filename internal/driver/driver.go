// Package driver wires the full compilation pipeline together: Impala
// source → Thorin IR → optimizer → bytecode → VM. It is the programmatic
// equivalent of the thorinc command and the entry point used by the
// benchmark harness and the examples.
package driver

import (
	"fmt"
	"io"

	"thorin/internal/analysis"
	"thorin/internal/codegen"
	"thorin/internal/impala"
	"thorin/internal/ir"
	"thorin/internal/pm"
	"thorin/internal/ssa"
	"thorin/internal/transform"
	"thorin/internal/vm"
)

// Result bundles everything produced by one compilation.
type Result struct {
	World   *ir.World
	Program *vm.Program
	Stats   transform.Stats
	// IRStats are taken after optimization.
	IRStats IRStats
	// Report is the pass manager's per-pass instrumentation of the run.
	Report *pm.Report
}

// Config controls the optimizer run beyond the pipeline spec itself.
type Config struct {
	// VerifyEach runs ir.Verify after every pass and fails the compile
	// naming the offending pass (a debug mode; the differential tests
	// enable it).
	VerifyEach bool
	// Jobs sets the worker count for the parallel analysis phase of
	// scope-level passes. 0 keeps the context default (1, or THORIN_JOBS).
	// The produced IR and program are identical at every jobs level.
	Jobs int
}

// IRStats summarizes the IR after a pipeline run.
type IRStats struct {
	Continuations int
	PrimOps       int
	HigherOrder   int // continuations violating control-flow form
}

// Compile runs the full pipeline over src. Options map to their canonical
// pass-manager spec (transform.SpecFor), so this is CompileSpec with the
// default configuration.
func Compile(src string, opts transform.Options, mode analysis.Mode) (*Result, error) {
	return CompileSpec(src, transform.SpecFor(opts), mode, Config{})
}

// CompileSpec runs the frontend, an explicit pass-manager pipeline spec
// (e.g. "cleanup,pe,fix(cff,contify,mem2reg,inline-once),cleanup,closure")
// and the backend over src.
func CompileSpec(src, spec string, mode analysis.Mode, cfg Config) (*Result, error) {
	w, err := impala.Compile(src)
	if err != nil {
		return nil, err
	}
	pl, err := pm.Parse(spec)
	if err != nil {
		return nil, err
	}
	ctx := pm.NewContext(w)
	ctx.VerifyEach = cfg.VerifyEach
	if cfg.Jobs > 0 {
		ctx.Jobs = cfg.Jobs
	}
	rep, err := pl.Run(ctx)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(w); err != nil {
		return nil, fmt.Errorf("driver: optimizer produced invalid IR: %w", err)
	}
	prog, err := codegen.Compile(w, "main", codegen.Config{Mode: mode})
	if err != nil {
		return nil, err
	}
	return &Result{
		World:   w,
		Program: prog,
		Stats:   transform.PipelineStats(ctx),
		IRStats: MeasureIR(w),
		Report:  rep,
	}, nil
}

// MeasureIR counts continuations, primop nodes and CFF violations.
func MeasureIR(w *ir.World) IRStats {
	st := IRStats{PrimOps: w.NumPrimOps()}
	for _, c := range w.Continuations() {
		if c.IsIntrinsic() {
			continue
		}
		st.Continuations++
	}
	st.HigherOrder = len(transform.HigherOrderConts(w))
	return st
}

// Run compiles src and executes main with the given i64 arguments,
// returning the first result value and the VM counters.
func Run(src string, opts transform.Options, out io.Writer, args ...int64) (int64, vm.Counters, error) {
	res, err := Compile(src, opts, analysis.ScheduleSmart)
	if err != nil {
		return 0, vm.Counters{}, err
	}
	return Exec(res.Program, out, args...)
}

// CompileSSA runs the baseline classical SSA pipeline over src.
func CompileSSA(src string) (*vm.Program, *ssa.Module, error) {
	prog, err := impala.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if err := impala.Check(prog); err != nil {
		return nil, nil, err
	}
	return ssa.CompileProgram(prog)
}

// RunSSA compiles src through the baseline SSA pipeline and executes main.
func RunSSA(src string, out io.Writer, args ...int64) (int64, vm.Counters, error) {
	prog, _, err := CompileSSA(src)
	if err != nil {
		return 0, vm.Counters{}, err
	}
	return Exec(prog, out, args...)
}

// Exec runs a compiled program's main with i64 arguments.
func Exec(prog *vm.Program, out io.Writer, args ...int64) (int64, vm.Counters, error) {
	m := vm.New(prog, out)
	m.MaxSteps = 4_000_000_000
	vals := make([]vm.Value, len(args))
	for i, a := range args {
		vals[i] = vm.Value{I: a}
	}
	res, err := m.Run(vals...)
	if err != nil {
		return 0, m.Counters, err
	}
	if len(res) == 0 {
		return 0, m.Counters, nil
	}
	return res[0].I, m.Counters, nil
}
