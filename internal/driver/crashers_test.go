package driver

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCrashers replays the minimized crasher corpus as a regression suite:
// every program under testdata/crashers/ once broke the pipeline, so every
// one must now agree with the reference interpreter across all compiled
// arms and a spread of arguments.
func TestCrashers(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "crashers", "*.imp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("crasher corpus is empty; testdata/crashers/ should hold minimized reproducers")
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for _, arg := range []int64{0, 1, 7, -3, 63} {
				finding, err := diffArms(string(src), arg)
				if err != nil {
					t.Fatalf("arg %d: corpus file no longer judgeable: %v", arg, err)
				}
				if finding != "" {
					t.Errorf("arg %d: %s", arg, finding)
				}
			}
		})
	}
}
