// Package thorin is a reproduction of "A graph-based higher-order
// intermediate representation" (CGO 2015): the Thorin IR, its analyses and
// transformations (lambda mangling, conversion to control-flow form, slot
// promotion, partial evaluation, closure conversion), an Impala-like
// frontend, a classical SSA baseline compiler, and a bytecode VM substrate
// for the evaluation.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for recorded results. The benchmarks
// in bench_test.go regenerate every table and figure; the same data is
// printed by cmd/thorin-bench.
package thorin
