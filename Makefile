GO ?= go

.PHONY: all build test race vet fmt ci fuzz-smoke fuzz crashers loadtest modules wasm chaos bench bench-diff bench-full bench-passes tables

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race also re-runs the pass-manager and driver packages with four analysis
# workers forced, so the parallel scope scheduler is exercised under the race
# detector even on single-core hosts.
race:
	$(GO) test -race ./...
	THORIN_JOBS=4 $(GO) test -race ./internal/pm/... ./internal/driver/...

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt vet build race modules wasm fuzz-smoke fuzz crashers loadtest chaos bench bench-diff

# modules compiles and runs the shipped three-module example (a imports b,
# b imports and re-exports c) through the separate-compilation CLI path in
# both link modes; main(4) must print 34 either way.
modules:
	$(GO) run ./cmd/thorinc -run examples/modules/a.imp examples/modules/b.imp examples/modules/c.imp 4 | grep -qx 'result: 34'
	$(GO) run ./cmd/thorinc -link=mangle -run examples/modules/a.imp examples/modules/b.imp examples/modules/c.imp 4 | grep -qx 'result: 34'

# wasm is the WebAssembly backend gate: every example differentially
# executed against the VM at -O0/-O2 × jobs 1/4 plus multi-module linking
# under both targets, the crasher corpus replayed through the wasm arms of
# diffArms (TestCrashers), explicit module validation, and a CLI round trip
# through -target=wasm.
wasm:
	$(GO) test -run 'TestWasm|TestCrashers' -count=1 ./internal/driver
	$(GO) run ./cmd/thorinc -target=wasm -run examples/fib.imp 10 | grep -qx 'result: 55'

# fuzz-smoke gives the integer-fold fuzzer (seeded with the signed-overflow
# and division edge cases) a short budget; it fails fast on any fold panic.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzFoldArith -fuzztime=10s ./internal/ir

# fuzz runs the differential pipeline fuzzer: random well-typed programs,
# reference interpreter as oracle, compiled arms at -O0/-O2 × jobs 1/4.
# Failures are auto-minimized; save the reproducer under
# internal/driver/testdata/crashers/ to turn it into a regression.
FUZZTIME ?= 60s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCompile -fuzztime=$(FUZZTIME) ./internal/driver

# crashers replays the minimized crasher corpus under the race detector
# with four analysis workers forced.
crashers:
	THORIN_JOBS=4 $(GO) test -race -run TestCrashers ./internal/driver

# loadtest is the compile-server smoke gate: an in-process thorind on an
# ephemeral port serves concurrent cold+warm requests; the test asserts
# that every warm request hit the content-addressed cache, that the
# daemon's hit/miss counters reconcile exactly with the request
# arithmetic, and that shutdown drains cleanly.
loadtest:
	$(GO) test -run 'TestLoadTestSmoke|TestModLoadSmoke|TestOverloadSmoke' -count=1 ./internal/bench

# chaos is the deterministic fault-injection gate: the seeded chaos suite
# (injected disk/pass/transport faults against a live daemon; asserts the
# daemon survives, corrupt artifacts are never served, every counter
# reconciles exactly with the injected-fault counts, and surviving results
# are byte-identical to a fault-free run), plus a race-detector smoke of
# the storm. Override the seed with THORIN_CHAOS_SEED=N.
chaos:
	$(GO) test -run 'TestChaos' -count=1 ./internal/server
	$(GO) test -race -run 'TestChaosStorm' -count=1 ./internal/server

# bench is the allocation-regression gate: a single-iteration smoke run of
# every throughput benchmark (catches benchmarks that crash or regress into
# errors), then the fast allocation measurement refreshing BENCH_pr4.json.
# The JSON keeps the frozen pre-optimization baseline and overwrites only
# the current numbers, so the delta stays reviewable in the diff.
bench:
	$(GO) test -short -run='^$$' -bench=. -benchtime=1x ./internal/bench
	$(GO) run ./cmd/thorin-bench -alloc -o BENCH_pr4.json
	$(GO) run ./cmd/thorin-bench -incremental -fast -o BENCH_pr5.json
	$(GO) run ./cmd/thorin-bench -loadtest -o BENCH_pr6.json
	$(GO) run ./cmd/thorin-bench -modload -o BENCH_pr7.json
	$(GO) run ./cmd/thorin-bench -overload -o BENCH_pr8.json
	$(GO) run ./cmd/thorin-bench -memory -fast -o BENCH_pr9.json
	$(GO) run ./cmd/thorin-bench -backends -fast -o BENCH_pr10.json

# bench-diff is the regression gate: re-measure the incremental-vs-full
# fixpoint workload (at the same fast scale the committed report was taken
# at) and fail if any workload's incremental Optimize ns/op regressed by
# more than 10% against BENCH_pr5.json; then re-measure the effect-region
# memory workload and fail if its VM instruction count regressed by more
# than 10% against BENCH_pr9.json (the structural wins — promoted slots,
# hoisted loads, split chains — are hard asserts inside the measurement).
bench-diff:
	$(GO) run ./cmd/thorin-bench -incremental -fast -diff BENCH_pr5.json
	$(GO) run ./cmd/thorin-bench -memory -fast -diff BENCH_pr9.json

# bench-full runs the whole evaluation harness at laptop scale.
bench-full:
	$(GO) test -bench=. -benchmem -run='^$$'

# bench-passes records the per-pass compile-time breakdown only.
bench-passes:
	$(GO) test -bench=BenchmarkPassTimings -run='^$$'

tables:
	$(GO) run ./cmd/thorin-bench -all -fast
