GO ?= go

.PHONY: all build test race vet fmt ci bench bench-passes tables

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt vet build race

# bench runs the whole evaluation harness at laptop scale.
bench:
	$(GO) test -bench=. -benchmem -run='^$$'

# bench-passes records the per-pass compile-time breakdown only.
bench-passes:
	$(GO) test -bench=BenchmarkPassTimings -run='^$$'

tables:
	$(GO) run ./cmd/thorin-bench -all -fast
