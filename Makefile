GO ?= go

.PHONY: all build test race vet fmt ci fuzz-smoke fuzz crashers bench bench-passes tables

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race also re-runs the pass-manager and driver packages with four analysis
# workers forced, so the parallel scope scheduler is exercised under the race
# detector even on single-core hosts.
race:
	$(GO) test -race ./...
	THORIN_JOBS=4 $(GO) test -race ./internal/pm/... ./internal/driver/...

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt vet build race fuzz-smoke fuzz crashers

# fuzz-smoke gives the integer-fold fuzzer (seeded with the signed-overflow
# and division edge cases) a short budget; it fails fast on any fold panic.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzFoldArith -fuzztime=10s ./internal/ir

# fuzz runs the differential pipeline fuzzer: random well-typed programs,
# reference interpreter as oracle, compiled arms at -O0/-O2 × jobs 1/4.
# Failures are auto-minimized; save the reproducer under
# internal/driver/testdata/crashers/ to turn it into a regression.
FUZZTIME ?= 60s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCompile -fuzztime=$(FUZZTIME) ./internal/driver

# crashers replays the minimized crasher corpus under the race detector
# with four analysis workers forced.
crashers:
	THORIN_JOBS=4 $(GO) test -race -run TestCrashers ./internal/driver

# bench runs the whole evaluation harness at laptop scale.
bench:
	$(GO) test -bench=. -benchmem -run='^$$'

# bench-passes records the per-pass compile-time breakdown only.
bench-passes:
	$(GO) test -bench=BenchmarkPassTimings -run='^$$'

tables:
	$(GO) run ./cmd/thorin-bench -all -fast
