module thorin

go 1.22
