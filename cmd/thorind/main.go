// Command thorind is the compile-server daemon: a long-lived HTTP/JSON
// service that compiles Impala programs on demand and caches the emitted
// artifacts in a content-addressed store, so repeated compiles of the same
// (source, pipeline spec, schedule) are served without running the
// pipeline at all.
//
// Usage:
//
//	thorind [flags]
//
// Examples:
//
//	thorind -addr :7474                     # serve on port 7474
//	thorind -addr :7474 -cache-dir .thorind # persist artifacts across restarts
//	thorind -cache-entries 1024 -jobs 8     # bigger LRU, 8 analysis workers
//	thorind -max-inflight 4 -max-queue 8 -queue-wait 500ms  # explicit load-shedding gate
//	thorinc -server localhost:7474 -run prog.imp 10   # compile remotely, run locally
//	thorinc -server localhost:7474 -run a.imp b.imp c.imp 10  # separate compilation + link
//	curl -s localhost:7474/metrics | jq .   # request/cache/pass counters
//
// Endpoints:
//
//	POST /compile   {"source": ..., "spec"/"opt", "schedule", "jobs", "on_failure", "budget"}
//	                or {"sources": [...], "link": "trampoline"|"mangle", ...} for a
//	                multi-module compile: each module is cached under its own key
//	                (source + resolved import signatures), so editing one module
//	                on a warm cache recompiles only that module's artifact
//	GET  /metrics   request counts, cache hit/miss, per-pass timings, interning totals
//	GET  /healthz   liveness probe: "ok", "degraded: cache-disk" (disk cache
//	                faulted, memory-only until the recovery probe succeeds),
//	                "degraded: overloaded" (all compile slots busy, queue
//	                occupied), or 503 "draining" during shutdown
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight compiles (bounded by -drain-timeout), and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thorin/internal/driver"
	"thorin/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":7474", "listen address (host:port)")
		cacheEntries = flag.Int("cache-entries", server.DefaultCacheEntries, "in-memory artifact cache capacity (entries)")
		cacheDir     = flag.String("cache-dir", "", "on-disk artifact cache directory (empty disables; survives restarts)")
		crashDir     = flag.String("crash-dir", ".thorin-crash", "directory for crash reproduction bundles (empty disables)")
		jobs         = flag.Int("jobs", 0, "default analysis worker count for requests that do not set jobs (0 = driver default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight compiles")
		maxInFlight  = flag.Int("max-inflight", 0, "concurrently executing compiles before new requests queue (0 = 2x GOMAXPROCS, negative disables admission control)")
		maxQueue     = flag.Int("max-queue", 0, "requests allowed to wait for a compile slot before being shed with 429 (0 = 4x max-inflight, negative sheds immediately when full)")
		queueWait    = flag.Duration("queue-wait", 0, "longest a queued request waits for a compile slot before being shed (0 = 1s)")
		quiet        = flag.Bool("quiet", false, "suppress per-request logging")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: thorind [flags]")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "thorind: ", log.LstdFlags)
	srvLog := logger
	if *quiet {
		srvLog = nil
	}
	srv := server.New(server.Config{
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		CrashDir:     *crashDir,
		DefaultJobs:  *jobs,
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		QueueWait:    *queueWait,
		Log:          srvLog,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("serving %s on %s (cache %d entries, dir %q)",
		driver.Version, l.Addr(), *cacheEntries, *cacheDir)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		logger.Printf("%s: draining (timeout %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("drain incomplete: %v", err)
			os.Exit(1)
		}
		<-done
	case err := <-done:
		if err != nil {
			logger.Fatalf("serve: %v", err)
		}
	}

	m := srv.Metrics()
	logger.Printf("drained cleanly: %d requests (%d ok, %d errors, %d cache hits, %d shed, %d canceled/deadline)",
		m.Requests, m.OK, m.Errors, m.CacheHits, m.Sheds, m.Canceled+m.DeadlineExceeded)
}
