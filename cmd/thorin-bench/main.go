// Command thorin-bench regenerates the evaluation tables and figures of the
// reproduction (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	thorin-bench -all              # everything
//	thorin-bench -table 1          # IR statistics
//	thorin-bench -table 2          # closure elimination
//	thorin-bench -table 3          # φ vs mem2reg params
//	thorin-bench -table 4          # compile-time scaling
//	thorin-bench -table 5          # per-pass compile-time breakdown
//	thorin-bench -table 6          # compile time vs -jobs workers
//	thorin-bench -figure runtime   # the headline runtime comparison
//	thorin-bench -figure sweep     # overhead vs input size
//	thorin-bench -ablation all     # consing / schedule / mem2reg ablations
//	thorin-bench -fast             # reduced problem sizes everywhere
//	thorin-bench -alloc -o BENCH_pr4.json   # compile-throughput + allocs/op
package main

import (
	"flag"
	"fmt"
	"os"

	"thorin/internal/bench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "print table N (1-6)")
		figure   = flag.String("figure", "", "print figure: runtime | sweep")
		ablation = flag.String("ablation", "", "print ablation: consing | schedule | mem2reg | all")
		all      = flag.Bool("all", false, "print every table, figure and ablation")
		fast     = flag.Bool("fast", false, "use reduced problem sizes")
		alloc    = flag.Bool("alloc", false, "measure compile throughput (ns/op, allocs/op, bytes/op) and emit JSON")
		outFile  = flag.String("o", "", "with -alloc: write the JSON report to this file (default stdout); an existing report's baseline (or, failing that, its current numbers) is carried forward as the baseline")
	)
	flag.Parse()

	if *alloc {
		if err := runAlloc(*outFile, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		return
	}

	var sizes bench.Sizes
	if *fast {
		sizes = bench.Sizes{
			"fib": 18, "mapreduce": 3000, "filter": 3000, "compose": 3000,
			"mandelbrot": 16, "nbody": 200, "spectralnorm": 16, "qsort": 1000,
			"matmul": 12, "nqueens": 7,
		}
	}

	out := os.Stdout
	ran := false
	check := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
		ran = true
	}

	if *all || *table == 1 {
		check(bench.Table1(out, sizes))
	}
	if *all || *table == 2 {
		check(bench.Table2(out, sizes))
	}
	if *all || *figure == "runtime" {
		check(bench.FigureRuntime(out, sizes))
	}
	if *all || *figure == "sweep" {
		check(bench.FigureSweep(out))
	}
	if *all || *table == 3 {
		check(bench.Table3(out))
	}
	if *all || *table == 4 {
		check(bench.Table4(out))
	}
	if *all || *table == 5 {
		check(bench.TablePasses(out))
	}
	if *all || *table == 6 {
		check(bench.TableJobs(out))
	}
	if *all || *ablation == "consing" || *ablation == "all" {
		check(bench.AblationConsing(out))
	}
	if *all || *ablation == "schedule" || *ablation == "all" {
		check(bench.AblationSchedule(out, sizes))
	}
	if *all || *ablation == "mem2reg" || *ablation == "all" {
		check(bench.AblationMem2Reg(out, sizes))
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runAlloc measures compile throughput and writes the JSON trajectory. When
// the output file already holds a report, its baseline survives (so
// regenerating BENCH_pr4.json keeps the pre-optimization numbers to compare
// against); a report without a baseline promotes its current numbers.
func runAlloc(outFile string, fast bool) error {
	rep := bench.ThroughputReport{
		Note: "compile throughput: ns/op, allocs/op, bytes/op per workload; baseline = before the allocation-lean IR core (PR 4)",
		Fast: fast,
	}
	if outFile != "" {
		if f, err := os.Open(outFile); err == nil {
			old, rerr := bench.ReadThroughputReport(f)
			f.Close()
			// A baseline measured at a different problem scale is not
			// comparable; only carry it forward when the modes match.
			if rerr == nil && old.Fast == fast {
				rep.Baseline = old.Baseline
				if rep.Baseline == nil {
					rep.Baseline = old.Current
				}
			}
		}
	}
	rep.Current = bench.MeasureThroughput(fast)

	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteThroughputJSON(out, rep); err != nil {
		return err
	}
	if outFile != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d workloads)\n", outFile, len(rep.Current))
	}
	return nil
}
