// Command thorin-bench regenerates the evaluation tables and figures of the
// reproduction (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	thorin-bench -all              # everything
//	thorin-bench -table 1          # IR statistics
//	thorin-bench -table 2          # closure elimination
//	thorin-bench -table 3          # φ vs mem2reg params
//	thorin-bench -table 4          # compile-time scaling
//	thorin-bench -table 5          # per-pass compile-time breakdown
//	thorin-bench -table 6          # compile time vs -jobs workers
//	thorin-bench -figure runtime   # the headline runtime comparison
//	thorin-bench -figure sweep     # overhead vs input size
//	thorin-bench -ablation all     # consing / schedule / mem2reg ablations
//	thorin-bench -fast             # reduced problem sizes everywhere
package main

import (
	"flag"
	"fmt"
	"os"

	"thorin/internal/bench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "print table N (1-6)")
		figure   = flag.String("figure", "", "print figure: runtime | sweep")
		ablation = flag.String("ablation", "", "print ablation: consing | schedule | mem2reg | all")
		all      = flag.Bool("all", false, "print every table, figure and ablation")
		fast     = flag.Bool("fast", false, "use reduced problem sizes")
	)
	flag.Parse()

	var sizes bench.Sizes
	if *fast {
		sizes = bench.Sizes{
			"fib": 18, "mapreduce": 3000, "filter": 3000, "compose": 3000,
			"mandelbrot": 16, "nbody": 200, "spectralnorm": 16, "qsort": 1000,
			"matmul": 12, "nqueens": 7,
		}
	}

	out := os.Stdout
	ran := false
	check := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
		ran = true
	}

	if *all || *table == 1 {
		check(bench.Table1(out, sizes))
	}
	if *all || *table == 2 {
		check(bench.Table2(out, sizes))
	}
	if *all || *figure == "runtime" {
		check(bench.FigureRuntime(out, sizes))
	}
	if *all || *figure == "sweep" {
		check(bench.FigureSweep(out))
	}
	if *all || *table == 3 {
		check(bench.Table3(out))
	}
	if *all || *table == 4 {
		check(bench.Table4(out))
	}
	if *all || *table == 5 {
		check(bench.TablePasses(out))
	}
	if *all || *table == 6 {
		check(bench.TableJobs(out))
	}
	if *all || *ablation == "consing" || *ablation == "all" {
		check(bench.AblationConsing(out))
	}
	if *all || *ablation == "schedule" || *ablation == "all" {
		check(bench.AblationSchedule(out, sizes))
	}
	if *all || *ablation == "mem2reg" || *ablation == "all" {
		check(bench.AblationMem2Reg(out, sizes))
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
