// Command thorin-bench regenerates the evaluation tables and figures of the
// reproduction (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	thorin-bench -all              # everything
//	thorin-bench -table 1          # IR statistics
//	thorin-bench -table 2          # closure elimination
//	thorin-bench -table 3          # φ vs mem2reg params
//	thorin-bench -table 4          # compile-time scaling
//	thorin-bench -table 5          # per-pass compile-time breakdown
//	thorin-bench -table 6          # compile time vs -jobs workers
//	thorin-bench -figure runtime   # the headline runtime comparison
//	thorin-bench -figure sweep     # overhead vs input size
//	thorin-bench -ablation all     # consing / schedule / mem2reg ablations
//	thorin-bench -fast             # reduced problem sizes everywhere
//	thorin-bench -alloc -o BENCH_pr4.json   # compile-throughput + allocs/op
//	thorin-bench -incremental -o BENCH_pr5.json   # incremental vs full pipeline work
//	thorin-bench -incremental -diff BENCH_pr5.json   # fail on >10% optimize regression
//	thorin-bench -loadtest -o BENCH_pr6.json      # thorind cold vs warm-cache latency
//	thorin-bench -modload -o BENCH_pr7.json       # separate compilation: single-leaf edits on a warm daemon
//	thorin-bench -overload -o BENCH_pr8.json      # shed/retry storm: clients > compile slots
//	thorin-bench -memory -o BENCH_pr9.json        # effect-region memory pipeline: before/after wins
//	thorin-bench -memory -diff BENCH_pr9.json     # fail on a >10% VM-instruction regression
//	thorin-bench -backends -o BENCH_pr10.json     # vm vs wasm backend: emission time, payload size, dynamic instrs
package main

import (
	"flag"
	"fmt"
	"os"

	"thorin/internal/bench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "print table N (1-6)")
		figure   = flag.String("figure", "", "print figure: runtime | sweep")
		ablation = flag.String("ablation", "", "print ablation: consing | schedule | mem2reg | all")
		all      = flag.Bool("all", false, "print every table, figure and ablation")
		fast     = flag.Bool("fast", false, "use reduced problem sizes")
		alloc    = flag.Bool("alloc", false, "measure compile throughput (ns/op, allocs/op, bytes/op) and emit JSON")
		incr     = flag.Bool("incremental", false, "measure incremental-vs-full pipeline work (ns/op, scope builds, skipped runs) and emit JSON")
		loadtest = flag.Bool("loadtest", false, "load-test an in-process thorind (N clients × bench corpus, cold vs warm cache) and emit JSON")
		clients  = flag.Int("clients", 8, "with -loadtest: concurrent clients in the warm phase")
		rounds   = flag.Int("rounds", 5, "with -loadtest: warm sweeps over the corpus per client")
		modload  = flag.Bool("modload", false, "load-test thorind's separate-compilation path (shared-import module set, single-leaf edits on a warm cache) and emit JSON")
		leaves   = flag.Int("leaves", 16, "with -modload: leaf modules importing the shared util module")
		edits    = flag.Int("edits", 8, "with -modload: single-leaf edit requests after the cold build")
		memory   = flag.Bool("memory", false, "measure the effect-region memory pipeline (promoted slots, hoisted loads, split threads, VM instructions) before/after and emit JSON")
		backends = flag.Bool("backends", false, "compare the vm and wasm backends over the suite (emission ns/op, payload bytes, dynamic instructions; checksum parity enforced) and emit JSON")
		overload = flag.Bool("overload", false, "storm thorind with more retrying clients than compile slots, record shed rate and p50/p99 latency, and emit JSON")
		stormers = flag.Int("stormers", 8, "with -overload: concurrent retrying clients")
		perEach  = flag.Int("per-client", 3, "with -overload: distinct cold compiles per client")
		diffFile = flag.String("diff", "", "with -incremental/-memory: compare against this committed report and fail on a >10% regression instead of writing")
		outFile  = flag.String("o", "", "with -alloc/-incremental/-memory: write the JSON report to this file (default stdout); for -alloc an existing report's baseline (or, failing that, its current numbers) is carried forward as the baseline")
	)
	flag.Parse()

	if *alloc {
		if err := runAlloc(*outFile, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *incr {
		if err := runIncremental(*outFile, *diffFile, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *loadtest {
		if err := runLoadTest(*outFile, *clients, *rounds, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *modload {
		if err := runModLoad(*outFile, *leaves, *edits, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *memory {
		if err := runMemory(*outFile, *diffFile, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *overload {
		if err := runOverload(*outFile, *stormers, *perEach, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *backends {
		if err := runBackends(*outFile, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		return
	}

	var sizes bench.Sizes
	if *fast {
		sizes = bench.Sizes{
			"fib": 18, "mapreduce": 3000, "filter": 3000, "compose": 3000,
			"mandelbrot": 16, "nbody": 200, "spectralnorm": 16, "qsort": 1000,
			"matmul": 12, "nqueens": 7,
		}
	}

	out := os.Stdout
	ran := false
	check := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "thorin-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
		ran = true
	}

	if *all || *table == 1 {
		check(bench.Table1(out, sizes))
	}
	if *all || *table == 2 {
		check(bench.Table2(out, sizes))
	}
	if *all || *figure == "runtime" {
		check(bench.FigureRuntime(out, sizes))
	}
	if *all || *figure == "sweep" {
		check(bench.FigureSweep(out))
	}
	if *all || *table == 3 {
		check(bench.Table3(out))
	}
	if *all || *table == 4 {
		check(bench.Table4(out))
	}
	if *all || *table == 5 {
		check(bench.TablePasses(out))
	}
	if *all || *table == 6 {
		check(bench.TableJobs(out))
	}
	if *all || *ablation == "consing" || *ablation == "all" {
		check(bench.AblationConsing(out))
	}
	if *all || *ablation == "schedule" || *ablation == "all" {
		check(bench.AblationSchedule(out, sizes))
	}
	if *all || *ablation == "mem2reg" || *ablation == "all" {
		check(bench.AblationMem2Reg(out, sizes))
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runAlloc measures compile throughput and writes the JSON trajectory. When
// the output file already holds a report, its baseline survives (so
// regenerating BENCH_pr4.json keeps the pre-optimization numbers to compare
// against); a report without a baseline promotes its current numbers.
func runAlloc(outFile string, fast bool) error {
	rep := bench.ThroughputReport{
		Note: "compile throughput: ns/op, allocs/op, bytes/op per workload; baseline = before the allocation-lean IR core (PR 4)",
		Fast: fast,
	}
	if outFile != "" {
		if f, err := os.Open(outFile); err == nil {
			old, rerr := bench.ReadThroughputReport(f)
			f.Close()
			// A baseline measured at a different problem scale is not
			// comparable; only carry it forward when the modes match.
			if rerr == nil && old.Fast == fast {
				rep.Baseline = old.Baseline
				if rep.Baseline == nil {
					rep.Baseline = old.Current
				}
			}
		}
	}
	rep.Current = bench.MeasureThroughput(fast)

	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteThroughputJSON(out, rep); err != nil {
		return err
	}
	if outFile != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d workloads)\n", outFile, len(rep.Current))
	}
	return nil
}

// runLoadTest runs the thorind cold-vs-warm load test and writes the JSON
// report (BENCH_pr6.json when committed).
func runLoadTest(outFile string, clients, rounds int, fast bool) error {
	rep, err := bench.MeasureLoad(clients, rounds, fast)
	if err != nil {
		return err
	}
	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteLoadJSON(out, rep); err != nil {
		return err
	}
	if outFile != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d programs, %d storm requests, %.1fx warm speedup)\n",
			outFile, len(rep.Cases), rep.StormRequests, rep.SpeedupX)
	}
	return nil
}

// runModLoad runs the shared-import separate-compilation load test and
// writes the JSON report (BENCH_pr7.json when committed). fast shrinks the
// module set for smoke runs.
func runModLoad(outFile string, leaves, edits int, fast bool) error {
	if fast {
		leaves, edits = 6, 3
	}
	rep, err := bench.MeasureModuleLoad(leaves, edits, fast)
	if err != nil {
		return err
	}
	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteModLoadJSON(out, rep); err != nil {
		return err
	}
	if outFile != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d modules, %d edits, %.1fx edit speedup over cold build)\n",
			outFile, rep.Modules, rep.Edits, rep.EditSpeedupX)
	}
	return nil
}

// runOverload runs the shed/retry storm and writes the JSON report
// (BENCH_pr8.json when committed). fast shrinks the storm for smoke runs.
func runOverload(outFile string, clients, perClient int, fast bool) error {
	if fast {
		clients, perClient = 6, 2
	}
	rep, err := bench.MeasureOverload(clients, perClient, fast)
	if err != nil {
		return err
	}
	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteOverloadJSON(out, rep); err != nil {
		return err
	}
	if outFile != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d clients vs %d slots: %.0f%% shed rate, %d retries, p99 %.0fms)\n",
			outFile, rep.Clients, rep.MaxInFlight, 100*rep.ShedRate, rep.Retries, float64(rep.P99Ns)/1e6)
	}
	return nil
}

// runMemory measures the effect-region memory pipeline before/after
// comparison (BENCH_pr9.json when committed). With diffFile set it acts as
// a regression gate: the fresh measurement must stay within 10% of the
// committed report's VM instruction count.
// runBackends measures the vm-vs-wasm backend comparison (checksum parity
// is enforced inside the measurement) and writes BENCH_pr10.json.
func runBackends(outFile string, fast bool) error {
	rep, err := bench.MeasureBackends(fast)
	if err != nil {
		return err
	}
	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return bench.WriteBackendsJSON(out, rep)
}

func runMemory(outFile, diffFile string, fast bool) error {
	rep, err := bench.MeasureMemory(fast)
	if err != nil {
		return err
	}

	if diffFile != "" {
		f, err := os.Open(diffFile)
		if err != nil {
			return err
		}
		old, rerr := bench.ReadMemoryReport(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
		if err := bench.DiffMemory(old, rep, 10); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "memory bench within 10%% of %s (%d → %d VM instructions)\n",
			diffFile, old.After.VMInstructions, rep.After.VMInstructions)
		return nil
	}

	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteMemoryJSON(out, rep); err != nil {
		return err
	}
	if outFile != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (+%d promoted slots, %d hoisted loads, %d effect threads, %.1f%% fewer VM instructions)\n",
			outFile, rep.PromotedSlotDelta, rep.After.HoistedLoads, rep.After.EffectThreads, rep.InstrSavedPct)
	}
	return nil
}

// runIncremental measures the incremental-vs-full pipeline comparison. With
// diffFile set it acts as a regression gate instead: the fresh measurement
// is compared against the committed report and any workload whose
// incremental optimize time regressed by more than 10% fails the run.
func runIncremental(outFile, diffFile string, fast bool) error {
	rep, err := bench.MeasureIncremental(fast)
	if err != nil {
		return err
	}

	if diffFile != "" {
		f, err := os.Open(diffFile)
		if err != nil {
			return err
		}
		old, rerr := bench.ReadIncrementalReport(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
		if err := bench.DiffIncremental(old, rep, 10); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "incremental bench within 10%% of %s (%d workloads)\n", diffFile, len(rep.Cases))
		return nil
	}

	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteIncrementalJSON(out, rep); err != nil {
		return err
	}
	if outFile != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d workloads)\n", outFile, len(rep.Cases))
	}
	return nil
}
