// Command thorinc is the compiler driver: it compiles an Impala source file
// through the Thorin graph-IR pipeline (or the classical SSA baseline) and
// can dump the IR, disassemble the bytecode, or run the program.
//
// Usage:
//
//	thorinc [flags] file.imp [more.imp ...] [args...]
//
// Passing several .imp files (each opening with `module NAME;`) selects
// separate compilation: every module is compiled into its own world and
// the set is linked (-link picks trampoline or mangle resolution).
//
// Examples:
//
//	thorinc -run examples/fib.imp 30
//	thorinc -run a.imp b.imp c.imp 10      # compile modules separately, link, run
//	thorinc -link=mangle -run a.imp b.imp 10  # specialize across module boundaries
//	thorinc -emit=thorin -O 0 prog.imp     # dump the unoptimized graph IR
//	thorinc -emit=thorin prog.imp          # dump the optimized graph IR
//	thorinc -emit=ssa prog.imp             # dump the baseline SSA module
//	thorinc -emit=bytecode prog.imp        # disassemble the bytecode
//	thorinc -target=wasm -run prog.imp 10  # compile to wasm, run on the interpreter
//	thorinc -target=wasm -emit=wat prog.imp  # print the wasm module as WAT
//	thorinc -pipeline=ssa -run prog.imp 10 # execute via the baseline
//	thorinc -passes="cleanup,pe,fix(cff,contify,mem2reg,inline-once),cleanup,closure" \
//	    -emit=pass-report prog.imp         # custom pipeline + per-pass table
//	thorinc -verify-each prog.imp          # ir.Verify after every pass
//	thorinc -incremental=off prog.imp      # disable journal-driven pass skipping
//	thorinc -budget "time=30s,nodes=500000" prog.imp   # bounded compile
//	thorinc -on-failure=degrade -run prog.imp 10       # survive a buggy pass
//	thorinc -replay .thorin-crash/crash-ab12cd34ef56   # re-run a crash bundle
//	thorinc -cpuprofile cpu.pprof prog.imp             # profile the compile
//	thorinc -memprofile mem.pprof prog.imp             # heap profile at exit
//	thorinc -server localhost:7474 -run prog.imp 10    # compile on a thorind daemon
//
// Exit status: 0 on success, 1 on errors, 2 on usage mistakes, and 3 when
// the compile succeeded only by graceful degradation (a pass was stripped;
// see -on-failure=degrade). Pass -allow-degraded to treat degraded
// compiles as success.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"thorin/internal/analysis"
	"thorin/internal/backend"
	"thorin/internal/driver"
	"thorin/internal/ir"
	"thorin/internal/link"
	"thorin/internal/pm"
	"thorin/internal/server"
	"thorin/internal/transform"
	"thorin/internal/vm"
	"thorin/internal/wasm"
)

// exitDegraded is the exit status of a compile that finished only via
// graceful degradation; distinct from 1 (error) so scripts and CI can
// detect a silently-weaker build. -allow-degraded opts out.
const exitDegraded = 3

func main() {
	var (
		emit        = flag.String("emit", "", "dump: thorin | ssa | bytecode | wat | dot | cfg | pass-report | pass-report-json")
		targetName  = flag.String("target", "vm", "code generation target: vm (bytecode) | wasm (WebAssembly module)")
		pipeline    = flag.String("pipeline", "thorin", "pipeline: thorin | ssa")
		optLevel    = flag.Int("O", 2, "optimization level for the thorin pipeline: 0, 1 (no mangling), 2")
		passes      = flag.String("passes", "", "explicit pass-pipeline spec, e.g. \"cleanup,pe,fix(cff,contify,mem2reg,inline-once),cleanup,closure\" (overrides -O)")
		verifyEach  = flag.Bool("verify-each", false, "run ir.Verify after every pass and fail naming the offending pass")
		jobs        = flag.Int("jobs", runtime.GOMAXPROCS(0), "worker count for the parallel analysis phase of scope-level passes (output is identical at every value)")
		incremental = flag.String("incremental", "on", "journal-driven incremental re-running: on | off (output is identical either way; off re-runs every pass)")
		linkMode    = flag.String("link", "trampoline", "cross-module resolution for multi-module compiles: trampoline (forwarding stubs) | mangle (whole-program specialization across module boundaries)")
		run         = flag.Bool("run", false, "execute main with the trailing integer arguments")
		stats       = flag.Bool("stats", false, "print compilation and execution statistics")
		schedule    = flag.String("schedule", "smart", "primop schedule: early | late | smart")
		budgetSpec  = flag.String("budget", "", "compilation budget, e.g. \"iters=8,nodes=200000,time=30s\" (any subset of keys)")
		onFailure   = flag.String("on-failure", "fail", "pass-failure policy: fail (abort with a crash bundle) | degrade (strip the faulting pass and finish unoptimized)")
		crashDir    = flag.String("crash-dir", ".thorin-crash", "directory for crash reproduction bundles (empty disables)")
		replay      = flag.String("replay", "", "re-run the compilation recorded in a crash bundle directory and exit")
		serverAddr  = flag.String("server", "", "compile on a thorind daemon at this address instead of in-process (host:port or http://host:port)")
		retries     = flag.Int("retries", 3, "with -server: how many times to retry a shed (429), draining (503) or unreachable daemon, under capped exponential backoff")
		retryBudget = flag.Duration("retry-budget", 0, "with -server: total wall-clock bound across all retry attempts and backoff sleeps (0 = no bound)")
		deadline    = flag.Duration("deadline", 0, "with -server: per-request compile deadline enforced by the daemon, including queue time (0 = none)")
		allowDegr   = flag.Bool("allow-degraded", false, "exit 0 instead of 3 when the compile finished via graceful degradation")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	)
	flag.Parse()

	startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	disableIncremental := false
	switch *incremental {
	case "on":
	case "off":
		disableIncremental = true
	default:
		fatal(fmt.Errorf("bad -incremental %q (want on or off)", *incremental))
	}

	budget := pm.Budget{}
	if *budgetSpec != "" {
		b, err := pm.ParseBudget(*budgetSpec)
		if err != nil {
			fatal(err)
		}
		budget = b
	}

	if *replay != "" {
		res, err := driver.Replay(*replay)
		if err != nil {
			fatal(fmt.Errorf("replay: %w", err))
		}
		fmt.Fprintf(os.Stderr, "thorinc: replay of %s succeeded — the recorded failure no longer reproduces\n", *replay)
		if *run {
			runProgram(res.Target, res.Program, res.Wasm, replayArgs(), *emit, true, *stats)
		}
		return
	}

	// Leading positionals naming source files are inputs (several .imp
	// files form a multi-module compile); the rest are integer program
	// arguments for -run.
	rest := flag.Args()
	var srcFiles []string
	for len(rest) > 0 && (strings.HasSuffix(rest[0], ".imp") || strings.HasSuffix(rest[0], ".thorin")) {
		srcFiles = append(srcFiles, rest[0])
		rest = rest[1:]
	}
	if len(srcFiles) == 0 {
		fmt.Fprintln(os.Stderr, "usage: thorinc [flags] file.imp [more.imp ...] [args...]")
		flag.Usage()
		stopProfiles()
		os.Exit(2)
	}
	sources := make([]string, len(srcFiles))
	for i, f := range srcFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		sources[i] = string(b)
	}
	src := sources[0]

	var args []int64
	for _, a := range rest {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			// flag.Parse stops at the first positional, so a flag given
			// after the source file lands here looking like a bad program
			// argument. Name the actual mistake instead.
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "thorinc: flag %q after the source file: flags must precede the source file\n", a)
				stopProfiles()
				os.Exit(2)
			}
			fatal(fmt.Errorf("bad argument %q: %w", a, err))
		}
		args = append(args, v)
	}

	mode := analysis.ScheduleSmart
	switch *schedule {
	case "early":
		mode = analysis.ScheduleEarly
	case "late":
		mode = analysis.ScheduleLate
	}

	target, err := backend.ParseTarget(*targetName)
	if err != nil {
		fatal(err)
	}
	switch *emit {
	case "bytecode":
		if target != backend.VM {
			fatal(fmt.Errorf("-emit=bytecode needs -target=vm (the %s target has no bytecode)", target))
		}
	case "wat":
		if target != backend.Wasm {
			fatal(fmt.Errorf("-emit=wat needs -target=wasm"))
		}
	}
	if *pipeline == "ssa" && target != backend.VM {
		fatal(fmt.Errorf("-pipeline=ssa only targets the vm"))
	}

	opts := transform.OptAll()
	switch *optLevel {
	case 0:
		opts = transform.OptNone()
	case 1:
		opts = transform.Options{Mem2Reg: true}
	}
	spec := transform.SpecFor(opts)
	if *passes != "" {
		spec = *passes
	}

	lm, err := link.ParseMode(*linkMode)
	if err != nil {
		fatal(err)
	}
	// Several source files — or a single one opening with a module
	// declaration — select the separate-compilation path: each module is
	// compiled into its own world and the set is linked (see internal/link).
	moduleCompile := len(srcFiles) > 1 || isModuleSource(src)
	if moduleCompile {
		for _, f := range srcFiles {
			if strings.HasSuffix(f, ".thorin") {
				fatal(fmt.Errorf("textual IR (%s) cannot join a multi-module compile", f))
			}
		}
		if *pipeline == "ssa" {
			fatal(fmt.Errorf("-pipeline=ssa does not support multi-module compiles"))
		}
	}

	// Files ending in .thorin contain textual IR (the Print format) and
	// bypass the frontend.
	if strings.HasSuffix(srcFiles[0], ".thorin") {
		if *serverAddr != "" {
			fatal(fmt.Errorf("-server only compiles Impala sources (the daemon's frontend is the cache key's hash domain), not textual IR"))
		}
		w, err := ir.ParseWorld(src)
		if err != nil {
			fatal(err)
		}
		pl, err := pm.Parse(spec)
		if err != nil {
			fatal(err)
		}
		ctx := pm.NewContext(w)
		ctx.VerifyEach = *verifyEach
		ctx.Budget = budget
		if *jobs > 0 {
			ctx.Jobs = *jobs
		}
		if disableIncremental {
			ctx.Incremental = false
		}
		rep, err := pl.Run(ctx)
		if err != nil {
			fatal(err)
		}
		emitReport(rep, transform.PipelineStats(ctx), *emit)
		if *emit == "thorin" {
			ir.Print(os.Stdout, w)
		}
		be, err := backend.Lookup(target)
		if err != nil {
			fatal(err)
		}
		out, err := be.Compile(w, "main", backend.Config{Mode: mode})
		if err != nil {
			fatal(err)
		}
		runProgram(target, out.VM, out.Wasm, args, *emit, *run, *stats)
		return
	}

	var prog *vm.Program
	var wasmMod []byte
	degraded := false
	switch *pipeline {
	case "ssa":
		p, mod, err := driver.CompileSSA(src)
		if err != nil {
			fatal(err)
		}
		prog = p
		if *emit == "ssa" {
			for _, f := range mod.Funcs {
				fmt.Print(f.String())
			}
		}
		if *stats {
			phis, instrs := 0, 0
			for _, f := range mod.Funcs {
				phis += f.NumPhis()
				instrs += f.NumInstrs()
			}
			fmt.Fprintf(os.Stderr, "ssa: %d functions, %d instructions, %d φs\n",
				len(mod.Funcs), instrs, phis)
		}
	default:
		if *serverAddr != "" {
			switch *emit {
			// bytecode and wat dumps render the artifact payload itself, so
			// they work on remote compiles; IR dumps need the World, which
			// never leaves the daemon.
			case "", "bytecode", "wat":
			default:
				fatal(fmt.Errorf("-emit=%s is not available with -server (the daemon ships compiled artifacts, not IR)", *emit))
			}
			req := &driver.Request{
				Source:             src,
				Spec:               spec,
				Schedule:           *schedule,
				Target:             *targetName,
				Jobs:               *jobs,
				OnFailure:          *onFailure,
				Budget:             *budgetSpec,
				DisableIncremental: disableIncremental,
			}
			if moduleCompile {
				req.Source = ""
				req.Sources = sources
				req.Link = *linkMode
			}
			if *deadline > 0 {
				req.DeadlineMs = deadline.Milliseconds()
			}
			c := &server.Client{
				Addr:        *serverAddr,
				Retries:     *retries,
				RetryBudget: *retryBudget,
			}
			resp, art, err := c.Compile(req)
			if err != nil {
				fatal(err)
			}
			if art.Degraded {
				degraded = true
				fmt.Fprintf(os.Stderr, "thorinc: warning: remote pass failure in %v; daemon finished with degraded pipeline %q\n",
					art.FailedPasses, art.Spec)
			}
			prog = art.Program
			wasmMod = art.Wasm
			if *stats {
				m := art.IRStats
				fmt.Fprintf(os.Stderr,
					"thorin (remote %s): cache %s, key %s…, %d continuations, %d primops, %d higher-order\n",
					*serverAddr, resp.Cache, resp.Key[:12], m.Continuations, m.PrimOps, m.HigherOrder)
			}
			break
		}
		policy := driver.FailFast
		switch *onFailure {
		case "fail":
		case "degrade":
			policy = driver.Degrade
		default:
			fatal(fmt.Errorf("bad -on-failure %q (want fail or degrade)", *onFailure))
		}
		cfg := driver.Config{
			VerifyEach:         *verifyEach,
			Jobs:               *jobs,
			OnPassFailure:      policy,
			Budget:             budget,
			CrashDir:           *crashDir,
			DisableIncremental: disableIncremental,
			Target:             target,
		}
		var res *driver.Result
		var err error
		if moduleCompile {
			res, err = driver.CompileModules(sources, spec, mode, lm, cfg)
		} else {
			res, err = driver.CompileSpec(src, spec, mode, cfg)
		}
		if err != nil {
			fatal(err)
		}
		if res.Degraded {
			degraded = true
			fmt.Fprintf(os.Stderr, "thorinc: warning: pass failure in %v; finished with degraded pipeline %q", res.FailedPasses, res.Spec)
			if res.CrashBundle != "" {
				fmt.Fprintf(os.Stderr, " (crash bundle: %s)", res.CrashBundle)
			}
			fmt.Fprintln(os.Stderr)
		}
		emitReport(res.Report, res.Stats, *emit)
		if *emit == "thorin" {
			ir.Print(os.Stdout, res.World)
		}
		if *emit == "dot" || *emit == "cfg" {
			for _, c := range res.World.Externs() {
				if c.IsIntrinsic() || !c.HasBody() {
					continue
				}
				s := analysis.NewScope(c)
				if *emit == "dot" {
					analysis.WriteScopeDot(os.Stdout, s)
				} else {
					analysis.WriteCFGDot(os.Stdout, s)
				}
			}
		}
		prog = res.Program
		wasmMod = res.Wasm
		if *stats {
			m, st := res.IRStats, res.Stats
			fmt.Fprintf(os.Stderr,
				"thorin: %d continuations, %d primops, %d higher-order; cff-spec=%d m2r-slots=%d m2r-φparams=%d closures=%d\n",
				m.Continuations, m.PrimOps, m.HigherOrder,
				st.CFF.Specialized, st.Mem2Reg.PromotedSlots, st.Mem2Reg.PhiParams,
				st.Closure.Closures)
			fmt.Fprintf(os.Stderr,
				"thorin: m2r-skipped: escaped=%d interleaved=%d unpromotable-type=%d; effect-threads=%d dead-stores=%d\n",
				st.Mem2Reg.SkippedEscaped, st.Mem2Reg.SkippedInterleaved,
				st.Mem2Reg.SkippedUnpromotableType,
				st.EffectSplit.Threads, st.Cleanup.DeadStores)
		}
	}

	runProgram(target, prog, wasmMod, args, *emit, *run, *stats)

	// A degraded compile produced a valid but weaker-than-requested
	// program; all output above still happened, and the distinct exit
	// status lets scripts and CI detect it. -allow-degraded opts out.
	if degraded && !*allowDegr {
		fmt.Fprintln(os.Stderr, "thorinc: exit 3: compile finished via graceful degradation (-allow-degraded accepts it)")
		stopProfiles()
		os.Exit(exitDegraded)
	}
}

// isModuleSource reports whether a source opens with a module declaration
// (module is a keyword, so no other program can start with it).
func isModuleSource(src string) bool {
	f := strings.Fields(src)
	return len(f) > 0 && f[0] == "module"
}

// emitReport prints the pass-manager instrumentation when requested.
// Multi-module compiles carry no whole-program report (each module ran its
// own pipeline), so rep may be nil.
func emitReport(rep *pm.Report, st transform.Stats, emit string) {
	if rep == nil {
		return
	}
	switch emit {
	case "pass-report":
		rep.WriteText(os.Stdout)
		// The mem2reg rewrites column counts promotions; break the slots it
		// could NOT promote down by reason, and show the memory-dependence
		// work of the other passes next to it.
		fmt.Fprintf(os.Stdout,
			"mem2reg skips: escaped=%d interleaved=%d unpromotable-type=%d\n",
			st.Mem2Reg.SkippedEscaped, st.Mem2Reg.SkippedInterleaved,
			st.Mem2Reg.SkippedUnpromotableType)
		if st.EffectSplit.SplitChains > 0 || st.Cleanup.DeadStores > 0 {
			fmt.Fprintf(os.Stdout, "effect threads: chains=%d threads=%d; dead stores removed: %d\n",
				st.EffectSplit.SplitChains, st.EffectSplit.Threads, st.Cleanup.DeadStores)
		}
	case "pass-report-json":
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// runProgram handles the payload dump and execution stages shared by the
// frontend, textual-IR and remote paths. Exactly one of prog/mod is set,
// matching the target.
func runProgram(target backend.Target, prog *vm.Program, mod []byte, args []int64, emit string, run, stats bool) {
	switch emit {
	case "bytecode":
		vm.Disassemble(os.Stdout, prog)
	case "wat":
		m, err := wasm.Decode(mod)
		if err != nil {
			fatal(err)
		}
		fmt.Print(m.Wat())
	}
	if !run {
		return
	}
	if target == backend.Wasm {
		res, err := driver.ExecWasm(mod, os.Stdout, 0, args...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("result: %d\n", res)
		return
	}
	m := vm.New(prog, os.Stdout)
	vals := make([]vm.Value, len(args))
	for i, a := range args {
		vals[i] = vm.Value{I: a}
	}
	res, err := m.Run(vals...)
	if err != nil {
		fatal(err)
	}
	for _, v := range res {
		fmt.Printf("result: %d\n", v.I)
	}
	if stats {
		c := m.Counters
		fmt.Fprintf(os.Stderr,
			"vm: %d instructions, %d direct calls, %d indirect calls, %d closures allocated, %d loads, %d stores\n",
			c.Instructions, c.DirectCalls, c.IndirectCalls, c.ClosureAllocs, c.Loads, c.Stores)
	}
}

// replayArgs parses every positional argument as an i64; replay mode has
// no source-file positional, the bundle supplies the input.
func replayArgs() []int64 {
	var args []int64
	for _, a := range flag.Args() {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad argument %q: %w", a, err))
		}
		args = append(args, v)
	}
	return args
}

// profileStop flushes any active profiles. fatal() and the usage path run it
// explicitly because os.Exit skips deferred calls.
var profileStop func()

// startProfiles begins CPU profiling and/or arms a heap-profile dump. Both
// are flushed by stopProfiles, which is safe to call more than once.
func startProfiles(cpu, mem string) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("cpuprofile: %w", err))
		}
		cpuFile = f
	}
	profileStop = func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "thorinc: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "thorinc: memprofile:", err)
			}
		}
	}
}

func stopProfiles() {
	if profileStop != nil {
		profileStop()
		profileStop = nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thorinc:", err)
	stopProfiles()
	os.Exit(1)
}
