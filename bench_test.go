package thorin

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Run with
//
//	go test -bench=. -benchmem
//
// Wall-clock numbers measure this substrate (a bytecode VM); the
// per-operation metrics (instrs/op, closures/op, φs, IR node counts) are the
// deterministic quantities the experiment conclusions rest on.

import (
	"fmt"
	"testing"

	"thorin/internal/analysis"
	"thorin/internal/bench"
	"thorin/internal/driver"
	"thorin/internal/impala"
	"thorin/internal/ssa"
	"thorin/internal/transform"
	"thorin/internal/vm"
)

// benchSizes keeps `go test -bench=.` at laptop scale.
var benchSizes = bench.Sizes{
	"fib": 18, "mapreduce": 3000, "filter": 3000, "compose": 3000,
	"mandelbrot": 16, "nbody": 200, "spectralnorm": 16, "qsort": 1000,
	"matmul": 12, "nqueens": 7,
}

func sizeOf(p *bench.Program) int64 {
	if n, ok := benchSizes[p.Name]; ok {
		return n
	}
	return p.DefaultN
}

// compileArm compiles one (source, pipeline) pair once.
func compileArm(b *testing.B, src string, p bench.Pipeline) *vm.Program {
	b.Helper()
	switch p {
	case bench.Baseline:
		prog, _, err := driver.CompileSSA(src)
		if err != nil {
			b.Fatal(err)
		}
		return prog
	default:
		res, err := driver.Compile(src, p.Options(), analysis.ScheduleSmart)
		if err != nil {
			b.Fatal(err)
		}
		return res.Program
	}
}

// execArm runs a compiled program once and returns the counters.
func execArm(b *testing.B, prog *vm.Program, n int64) vm.Counters {
	b.Helper()
	_, c, err := driver.Exec(prog, nil, n)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTable1IRSize measures frontend IR construction per benchmark and
// reports the IR sizes of both frontends (Table 1).
func BenchmarkTable1IRSize(b *testing.B) {
	for i := range bench.Suite {
		p := &bench.Suite[i]
		b.Run(p.Name, func(b *testing.B) {
			var conts, primops int
			for i := 0; i < b.N; i++ {
				w, err := impala.Compile(p.Functional)
				if err != nil {
					b.Fatal(err)
				}
				transform.Cleanup(w)
				m := driver.MeasureIR(w)
				conts, primops = m.Continuations, m.PrimOps
			}
			_, mod, err := driver.CompileSSA(p.Functional)
			if err != nil {
				b.Fatal(err)
			}
			phis, instrs := 0, 0
			for _, f := range mod.Funcs {
				phis += f.NumPhis()
				instrs += f.NumInstrs()
			}
			b.ReportMetric(float64(conts), "conts")
			b.ReportMetric(float64(primops), "primops")
			b.ReportMetric(float64(instrs), "ssa-instrs")
			b.ReportMetric(float64(phis), "ssa-phis")
		})
	}
}

// BenchmarkTable2Closures runs each functional benchmark unoptimized and
// optimized, reporting runtime closure allocations and indirect calls
// (Table 2).
func BenchmarkTable2Closures(b *testing.B) {
	for i := range bench.Suite {
		p := &bench.Suite[i]
		n := sizeOf(p)
		for _, arm := range []bench.Pipeline{bench.ThorinO0, bench.ThorinOpt} {
			b.Run(fmt.Sprintf("%s/%s", p.Name, arm), func(b *testing.B) {
				prog := compileArm(b, p.Functional, arm)
				var c vm.Counters
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c = execArm(b, prog, n)
				}
				b.ReportMetric(float64(c.ClosureAllocs), "closures/op")
				b.ReportMetric(float64(c.IndirectCalls), "icalls/op")
			})
		}
	}
}

// BenchmarkFigureRuntime is the headline comparison: wall time and executed
// instructions of every arm of every benchmark (Figure "runtime").
func BenchmarkFigureRuntime(b *testing.B) {
	arms := []struct {
		name       string
		functional bool
		pipe       bench.Pipeline
	}{
		{"imp-ssa", false, bench.Baseline},
		{"imp-thorinO2", false, bench.ThorinOpt},
		{"fun-thorinO2", true, bench.ThorinOpt},
		{"fun-nomangle", true, bench.ThorinNoMangle},
		{"fun-thorinO0", true, bench.ThorinO0},
		{"fun-ssa", true, bench.Baseline},
	}
	for i := range bench.Suite {
		p := &bench.Suite[i]
		n := sizeOf(p)
		for _, arm := range arms {
			src := p.Imperative
			if arm.functional {
				src = p.Functional
			}
			b.Run(fmt.Sprintf("%s/%s", p.Name, arm.name), func(b *testing.B) {
				prog := compileArm(b, src, arm.pipe)
				var c vm.Counters
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c = execArm(b, prog, n)
				}
				b.ReportMetric(float64(c.Instructions), "instrs/op")
			})
		}
	}
}

// BenchmarkFigureSweep measures per-element overhead growth with input size
// for the two most closure-heavy benchmarks (Figure "sweep").
func BenchmarkFigureSweep(b *testing.B) {
	for _, name := range []string{"mapreduce", "compose"} {
		p := bench.Find(name)
		for _, n := range []int64{1000, 10000, 100000} {
			for _, arm := range []bench.Pipeline{bench.ThorinOpt, bench.ThorinO0, bench.Baseline} {
				b.Run(fmt.Sprintf("%s/n%d/%s", name, n, arm), func(b *testing.B) {
					prog := compileArm(b, p.Functional, arm)
					var c vm.Counters
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c = execArm(b, prog, n)
					}
					b.ReportMetric(float64(c.Instructions)/float64(n), "instrs/elem")
				})
			}
		}
	}
}

// BenchmarkTable3SSA compares φ-functions placed by the classical SSA
// construction with the parameters mem2reg introduces on the CPS graph
// (Table 3). The timed section is the SSA construction itself.
func BenchmarkTable3SSA(b *testing.B) {
	for i := range bench.Suite {
		p := &bench.Suite[i]
		b.Run(p.Name, func(b *testing.B) {
			var phis int
			for i := 0; i < b.N; i++ {
				prog, err := impala.Parse(p.Imperative)
				if err != nil {
					b.Fatal(err)
				}
				if err := impala.Check(prog); err != nil {
					b.Fatal(err)
				}
				mod, err := ssa.Build(prog)
				if err != nil {
					b.Fatal(err)
				}
				phis = 0
				for _, f := range mod.Funcs {
					phis += f.NumPhis()
				}
			}
			res, err := driver.Compile(p.Imperative,
				transform.Options{Mem2Reg: true}, analysis.ScheduleSmart)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(phis), "ssa-phis")
			b.ReportMetric(float64(res.Stats.Mem2Reg.PhiParams), "m2r-params")
		})
	}
}

// BenchmarkTable4Compile measures whole-pipeline compile time over synthetic
// higher-order chains (Table 4).
func BenchmarkTable4Compile(b *testing.B) {
	for _, depth := range []int{25, 50, 100, 200} {
		src := bench.GenChain(depth)
		b.Run(fmt.Sprintf("thorin/depth%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := driver.Compile(src, transform.OptAll(), analysis.ScheduleSmart); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ssa/depth%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := driver.CompileSSA(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPassTimings measures the full -O2 pipeline per benchmark and
// reports a per-pass wall-time breakdown from the pass manager's
// instrumentation (Table 5). Fix-group iterations are aggregated per pass;
// the runs metric shows how many times each pass actually fired.
func BenchmarkPassTimings(b *testing.B) {
	for i := range bench.Suite {
		p := &bench.Suite[i]
		b.Run(p.Name, func(b *testing.B) {
			var res *driver.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = driver.Compile(p.Functional, transform.OptAll(), analysis.ScheduleSmart)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, t := range res.Report.PassTotals() {
				b.ReportMetric(float64(t.Time.Microseconds()), t.Name+"-µs/op")
				b.ReportMetric(float64(t.Runs), t.Name+"-runs")
			}
		})
	}
}

// BenchmarkAblationConsing reports IR node counts with and without
// hash-consing (ablation A1).
func BenchmarkAblationConsing(b *testing.B) {
	for i := range bench.Suite {
		p := &bench.Suite[i]
		b.Run(p.Name, func(b *testing.B) {
			var on, off int
			for i := 0; i < b.N; i++ {
				w1, err := impala.Compile(p.Functional)
				if err != nil {
					b.Fatal(err)
				}
				w2, err := impala.CompileNoCons(p.Functional)
				if err != nil {
					b.Fatal(err)
				}
				on, off = w1.NumPrimOps(), w2.NumPrimOps()
			}
			b.ReportMetric(float64(on), "consed")
			b.ReportMetric(float64(off), "unconsed")
		})
	}
}

// BenchmarkAblationSchedule compares the three primop placement strategies
// (ablation A1).
func BenchmarkAblationSchedule(b *testing.B) {
	modes := []struct {
		name string
		mode analysis.Mode
	}{{"early", analysis.ScheduleEarly}, {"late", analysis.ScheduleLate}, {"smart", analysis.ScheduleSmart}}
	for _, name := range []string{"mandelbrot", "matmul", "nbody"} {
		p := bench.Find(name)
		n := sizeOf(p)
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/%s", name, m.name), func(b *testing.B) {
				res, err := driver.Compile(p.Imperative, transform.OptAll(), m.mode)
				if err != nil {
					b.Fatal(err)
				}
				var c vm.Counters
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c = execArm(b, res.Program, n)
				}
				b.ReportMetric(float64(c.Instructions), "instrs/op")
			})
		}
	}
}

// BenchmarkAblationMem2Reg compares runtime memory traffic with and without
// slot promotion (ablation A1).
func BenchmarkAblationMem2Reg(b *testing.B) {
	for _, name := range []string{"mapreduce", "mandelbrot", "qsort"} {
		p := bench.Find(name)
		n := sizeOf(p)
		for _, with := range []bool{true, false} {
			opts := transform.OptAll()
			opts.Mem2Reg = with
			label := "with"
			if !with {
				label = "without"
			}
			b.Run(fmt.Sprintf("%s/%s", name, label), func(b *testing.B) {
				res, err := driver.Compile(p.Imperative, opts, analysis.ScheduleSmart)
				if err != nil {
					b.Fatal(err)
				}
				var c vm.Counters
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c = execArm(b, res.Program, n)
				}
				b.ReportMetric(float64(c.Loads+c.Stores), "memops/op")
			})
		}
	}
}
